//! The combined battery + CAS heuristic (paper §5.2, "Renewables + Battery
//! + CAS").
//!
//! The paper's priority order minimizes runtime delays:
//!
//! - on renewable *deficit*: discharge the battery first; shift workloads
//!   only if the stored energy (at the DoD limit) is insufficient;
//! - on renewable *surplus*: execute all deferred workloads first, then
//!   charge the battery with the remaining supply.
//!
//! Deferred work carries a completion deadline (the Tier-4 daily SLO by
//! default); work that reaches its deadline is force-run on grid energy so
//! SLOs are never violated.

use ce_battery::BatteryModel;
use ce_timeseries::kernels::COVERED_EPSILON_MWH;
use ce_timeseries::{DeficitStats, HourlySeries, TimeSeriesError};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration for the combined battery + CAS dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CombinedConfig {
    /// Hard cap on hourly facility power, MW (existing + extra servers).
    pub max_capacity_mw: f64,
    /// Fraction of each hour's load that may be deferred.
    pub flexible_ratio: f64,
    /// Deferral window, hours (Tier-4 daily SLO = 24).
    pub window_hours: usize,
}

impl Default for CombinedConfig {
    fn default() -> Self {
        Self {
            max_capacity_mw: f64::INFINITY,
            flexible_ratio: 0.4,
            window_hours: 24,
        }
    }
}

/// Result of a combined battery + CAS dispatch.
#[derive(Debug, Clone, PartialEq)]
pub struct CombinedResult {
    /// Grid energy consumed per hour (unmet by renewables/battery), MW.
    pub unmet: HourlySeries,
    /// The post-scheduling effective load, MW.
    pub effective_demand: HourlySeries,
    /// Power served from the battery per hour, MW.
    pub battery_supplied: HourlySeries,
    /// Curtailed renewable surplus per hour, MW.
    pub curtailed: HourlySeries,
    /// Battery state of charge at the end of each hour, MWh.
    pub soc: HourlySeries,
    /// Total energy deferred across the run, MWh.
    pub deferred_mwh: f64,
    /// Energy force-run on grid power at its SLO deadline, MWh.
    pub forced_mwh: f64,
    /// Largest backlog of deferred work at any instant, MWh.
    pub peak_backlog_mwh: f64,
    /// Equivalent full battery cycles performed.
    pub equivalent_cycles: f64,
}

/// Runs the combined heuristic over aligned `demand` and `supply` series.
///
/// The battery starts full (commissioning charge), as in
/// [`ce_battery::simulate_dispatch`].
///
/// # Errors
///
/// Returns an alignment error if the series are misaligned.
///
/// # Panics
///
/// Panics if `config.flexible_ratio` is outside `[0, 1]` or
/// `config.window_hours` is zero.
pub fn combined_dispatch(
    battery: &mut dyn BatteryModel,
    demand: &HourlySeries,
    supply: &HourlySeries,
    config: CombinedConfig,
) -> Result<CombinedResult, TimeSeriesError> {
    assert!(
        (0.0..=1.0).contains(&config.flexible_ratio),
        "flexible ratio must be in [0, 1]"
    );
    assert!(config.window_hours > 0, "window must be at least one hour");
    demand.check_aligned(supply)?;
    battery.reset(1.0);

    let len = demand.len();
    let start = demand.start();
    let mut unmet = vec![0.0; len];
    let mut effective = vec![0.0; len];
    let mut supplied = vec![0.0; len];
    let mut curtailed = vec![0.0; len];
    let mut soc = vec![0.0; len];
    let mut deferred_total = 0.0;
    let mut forced_total = 0.0;
    let mut peak_backlog = 0.0f64;
    let mut total_discharged = 0.0;

    // FIFO of (deadline_hour, energy_mwh) deferred jobs.
    let mut backlog: VecDeque<(usize, f64)> = VecDeque::new();

    for h in 0..len {
        let d = demand[h];
        let s = supply[h];
        let mut load = d;

        // SLO enforcement: any deferred work whose deadline is this hour
        // must run now, whatever the energy source.
        while let Some(&(deadline, energy)) = backlog.front() {
            if deadline <= h {
                backlog.pop_front();
                load += energy;
                forced_total += energy;
            } else {
                break;
            }
        }

        if s >= load {
            // Surplus: run deferred work first, newest-deadline last.
            let mut surplus = s - load;
            let mut headroom = (config.max_capacity_mw - load).max(0.0);
            while surplus > 1e-12 && headroom > 1e-12 {
                let Some((deadline, energy)) = backlog.pop_front() else {
                    break;
                };
                let run = energy.min(surplus).min(headroom);
                load += run;
                surplus -= run;
                headroom -= run;
                let remainder = energy - run;
                if remainder > 1e-12 {
                    backlog.push_front((deadline, remainder));
                }
            }
            // Then charge the battery; curtail the rest.
            let accepted = battery.charge(surplus);
            curtailed[h] = surplus - accepted;
        } else {
            // Deficit: battery first.
            let mut deficit = load - s;
            let delivered = battery.discharge(deficit);
            total_discharged += delivered;
            supplied[h] = delivered;
            deficit -= delivered;
            if deficit > 1e-12 {
                // Battery insufficient: defer what flexibility allows.
                // Only this hour's own flexible load can move (forced work
                // has already exhausted its window).
                let deferrable = (d * config.flexible_ratio).min(deficit);
                if deferrable > 1e-12 {
                    backlog.push_back((h + config.window_hours, deferrable));
                    deferred_total += deferrable;
                    load -= deferrable;
                    deficit -= deferrable;
                }
                unmet[h] = deficit;
            }
        }

        effective[h] = load;
        soc[h] = battery.soc_mwh();
        let backlog_now: f64 = backlog.iter().map(|(_, e)| e).sum();
        peak_backlog = peak_backlog.max(backlog_now);
    }

    // Anything still in the backlog at the end of the horizon is forced
    // onto grid energy (conservative accounting).
    let leftover: f64 = backlog.iter().map(|(_, e)| e).sum();
    if let Some(last) = unmet.last_mut() {
        *last += leftover;
        forced_total += leftover;
    }
    if let Some(last) = effective.last_mut() {
        *last += leftover;
    }

    let usable = battery.usable_capacity_mwh();
    Ok(CombinedResult {
        unmet: HourlySeries::from_values(start, unmet),
        effective_demand: HourlySeries::from_values(start, effective),
        battery_supplied: HourlySeries::from_values(start, supplied),
        curtailed: HourlySeries::from_values(start, curtailed),
        soc: HourlySeries::from_values(start, soc),
        deferred_mwh: deferred_total,
        forced_mwh: forced_total,
        peak_backlog_mwh: peak_backlog,
        equivalent_cycles: if usable > 0.0 {
            total_discharged / usable
        } else {
            0.0
        },
    })
}

/// Reusable state for [`combined_dispatch_stats`]: the deferred-work
/// backlog queue, kept warm across calls so the sweep hot path performs no
/// heap allocation once the queue has grown to its working size.
#[derive(Debug, Clone, Default)]
pub struct CombinedScratch {
    backlog: VecDeque<(usize, f64)>,
}

/// The sweep-relevant aggregates of a combined battery + CAS dispatch,
/// produced without materializing any per-hour series.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use]
pub struct CombinedStats {
    /// Unmet energy and fully-covered hour count of the grid draw
    /// (`u ≤ ce_timeseries::kernels::COVERED_EPSILON_MWH` counts as
    /// covered), including any end-of-horizon forced backlog.
    pub deficit: DeficitStats,
    /// Weighted grid draw `Σ unmet[h] · weight[h]` — operational carbon in
    /// tons when `weight` is the hourly grid carbon intensity (t/MWh).
    pub unmet_dot: f64,
    /// Total energy deferred across the run, MWh.
    pub deferred_mwh: f64,
    /// Energy force-run on grid power at its SLO deadline, MWh.
    pub forced_mwh: f64,
    /// Largest backlog of deferred work at any instant, MWh.
    pub peak_backlog_mwh: f64,
    /// Total energy delivered by the battery over the run, MWh.
    pub total_discharged_mwh: f64,
    /// Equivalent full battery cycles performed.
    pub equivalent_cycles: f64,
}

/// Streaming variant of [`combined_dispatch`]: runs the same
/// battery-first / defer-second heuristic hour by hour, but folds the
/// outputs into [`CombinedStats`] on the fly instead of materializing the
/// five year-long `unmet`/`effective_demand`/`battery_supplied`/
/// `curtailed`/`soc` series. The only state beyond scalars is the
/// deferred-work queue, which lives in the caller-owned `scratch`.
///
/// Every accumulator folds in hour order — with the final hour's grid
/// draw folded after the end-of-horizon backlog is forced onto it,
/// exactly as [`combined_dispatch`] patches its last `unmet` sample — so
/// the results are bitwise-identical to reducing the materializing path's
/// series: `deficit.unmet_mwh == unmet.sum()`,
/// `unmet_dot == unmet.dot(weight)`, and the deferral/cycle accounting
/// matches field for field.
///
/// The function is generic so concrete battery models are monomorphized
/// (no virtual dispatch in the inner loop); `&mut dyn BatteryModel` still
/// works.
///
/// # Errors
///
/// Returns an alignment error if `demand`, `supply`, and `weight` are not
/// mutually aligned.
///
/// # Panics
///
/// Panics if `config.flexible_ratio` is outside `[0, 1]` or
/// `config.window_hours` is zero.
// ce:hot
pub fn combined_dispatch_stats<B: BatteryModel + ?Sized>(
    battery: &mut B,
    demand: &HourlySeries,
    supply: &HourlySeries,
    weight: &HourlySeries,
    config: CombinedConfig,
    scratch: &mut CombinedScratch,
) -> Result<CombinedStats, TimeSeriesError> {
    assert!(
        (0.0..=1.0).contains(&config.flexible_ratio),
        "flexible ratio must be in [0, 1]"
    );
    assert!(config.window_hours > 0, "window must be at least one hour");
    demand.check_aligned(supply)?;
    demand.check_aligned(weight)?;
    battery.reset(1.0);

    let len = demand.len();
    let w = weight.values();
    let backlog = &mut scratch.backlog;
    backlog.clear();

    let mut unmet_mwh = 0.0;
    let mut covered_hours = 0usize;
    let mut unmet_dot = 0.0;
    let mut deferred_total = 0.0;
    let mut forced_total = 0.0;
    let mut peak_backlog = 0.0f64;
    let mut total_discharged = 0.0;
    // The final hour's grid draw is held back: the end-of-horizon backlog
    // is forced onto it before it is folded, mirroring the materializing
    // path's `*unmet.last_mut() += leftover`.
    let mut last_unmet = 0.0;

    for h in 0..len {
        let d = demand[h];
        let s = supply[h];
        let mut load = d;
        let mut unmet_now = 0.0;

        // SLO enforcement: any deferred work whose deadline is this hour
        // must run now, whatever the energy source.
        while let Some(&(deadline, energy)) = backlog.front() {
            if deadline <= h {
                backlog.pop_front();
                load += energy;
                forced_total += energy;
            } else {
                break;
            }
        }

        if s >= load {
            // Surplus: run deferred work first, newest-deadline last.
            let mut surplus = s - load;
            let mut headroom = (config.max_capacity_mw - load).max(0.0);
            while surplus > 1e-12 && headroom > 1e-12 {
                let Some((deadline, energy)) = backlog.pop_front() else {
                    break;
                };
                let run = energy.min(surplus).min(headroom);
                surplus -= run;
                headroom -= run;
                let remainder = energy - run;
                if remainder > 1e-12 {
                    backlog.push_front((deadline, remainder));
                }
            }
            // Then charge the battery (the curtailed remainder is not
            // tracked here).
            battery.charge(surplus);
        } else {
            // Deficit: battery first.
            let mut deficit = load - s;
            let delivered = battery.discharge(deficit);
            total_discharged += delivered;
            deficit -= delivered;
            if deficit > 1e-12 {
                // Battery insufficient: defer what flexibility allows.
                let deferrable = (d * config.flexible_ratio).min(deficit);
                if deferrable > 1e-12 {
                    backlog.push_back((h + config.window_hours, deferrable));
                    deferred_total += deferrable;
                    deficit -= deferrable;
                }
                unmet_now = deficit;
            }
        }

        let backlog_now: f64 = backlog.iter().map(|(_, e)| e).sum();
        peak_backlog = peak_backlog.max(backlog_now);

        if h + 1 == len {
            last_unmet = unmet_now;
        } else {
            unmet_mwh += unmet_now;
            if unmet_now <= COVERED_EPSILON_MWH {
                covered_hours += 1;
            }
            unmet_dot += unmet_now * w[h];
        }
    }

    // Anything still in the backlog at the end of the horizon is forced
    // onto grid energy (conservative accounting) via the final hour.
    if len > 0 {
        let leftover: f64 = backlog.iter().map(|(_, e)| e).sum();
        let u = last_unmet + leftover;
        forced_total += leftover;
        unmet_mwh += u;
        if u <= COVERED_EPSILON_MWH {
            covered_hours += 1;
        }
        unmet_dot += u * w[len - 1];
    }

    let usable = battery.usable_capacity_mwh();
    Ok(CombinedStats {
        deficit: DeficitStats {
            unmet_mwh,
            covered_hours,
        },
        unmet_dot,
        deferred_mwh: deferred_total,
        forced_mwh: forced_total,
        peak_backlog_mwh: peak_backlog,
        total_discharged_mwh: total_discharged,
        equivalent_cycles: if usable > 0.0 {
            total_discharged / usable
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_battery::{ClcBattery, IdealBattery};
    use ce_timeseries::Timestamp;

    fn start() -> Timestamp {
        Timestamp::start_of_year(2020)
    }

    fn cfg(flexible_ratio: f64) -> CombinedConfig {
        CombinedConfig {
            max_capacity_mw: 100.0,
            flexible_ratio,
            window_hours: 24,
        }
    }

    #[test]
    fn battery_is_used_before_shifting() {
        // Deficit of 5 MW at hour 1; 10 MWh battery covers it entirely, so
        // nothing should be deferred.
        let demand = HourlySeries::from_values(start(), vec![0.0, 5.0, 0.0]);
        let supply = HourlySeries::zeros(start(), 3);
        let mut battery = IdealBattery::new(10.0);
        let r = combined_dispatch(&mut battery, &demand, &supply, cfg(1.0)).unwrap();
        assert_eq!(r.deferred_mwh, 0.0);
        assert_eq!(r.battery_supplied[1], 5.0);
        assert_eq!(r.unmet.sum(), 0.0);
    }

    #[test]
    fn shifting_kicks_in_when_battery_is_exhausted() {
        let demand = HourlySeries::from_values(start(), vec![10.0, 0.0, 0.0]);
        let supply = HourlySeries::from_values(start(), vec![0.0, 20.0, 0.0]);
        let mut battery = IdealBattery::new(4.0);
        let r = combined_dispatch(&mut battery, &demand, &supply, cfg(0.5)).unwrap();
        // Hour 0: battery gives 4, flexible 5 deferred, 1 unmet.
        assert_eq!(r.battery_supplied[0], 4.0);
        assert_eq!(r.deferred_mwh, 5.0);
        assert!((r.unmet[0] - 1.0).abs() < 1e-9);
        // Hour 1: surplus runs the deferred 5 MWh before charging.
        assert!((r.effective_demand[1] - 5.0).abs() < 1e-9);
        assert_eq!(r.forced_mwh, 0.0);
    }

    #[test]
    fn surplus_runs_backlog_before_charging() {
        let demand = HourlySeries::from_values(start(), vec![10.0, 0.0]);
        let supply = HourlySeries::from_values(start(), vec![0.0, 12.0]);
        let mut battery = IdealBattery::new(100.0);
        // Battery starts full → covers hour 0 fully; no deferral. Use a
        // zero-capacity battery to force deferral instead.
        let mut zero = IdealBattery::new(0.0);
        let r = combined_dispatch(&mut zero, &demand, &supply, cfg(1.0)).unwrap();
        assert_eq!(r.deferred_mwh, 10.0);
        // Hour 1: all 10 deferred MWh run inside the 12 MW surplus.
        assert!((r.effective_demand[1] - 10.0).abs() < 1e-9);
        assert!((r.curtailed[1] - 2.0).abs() < 1e-9);
        // And with the big battery the same scenario defers nothing.
        let r2 = combined_dispatch(&mut battery, &demand, &supply, cfg(1.0)).unwrap();
        assert_eq!(r2.deferred_mwh, 0.0);
    }

    #[test]
    fn deadline_forces_execution_on_grid_power() {
        // Deferral at hour 0 with a 2-hour window and no surplus ever:
        // at hour 2 the job must run on grid energy.
        let demand = HourlySeries::from_values(start(), vec![10.0, 0.0, 0.0, 0.0]);
        let supply = HourlySeries::zeros(start(), 4);
        let mut battery = IdealBattery::new(0.0);
        let config = CombinedConfig {
            max_capacity_mw: 100.0,
            flexible_ratio: 0.5,
            window_hours: 2,
        };
        let r = combined_dispatch(&mut battery, &demand, &supply, config).unwrap();
        assert_eq!(r.deferred_mwh, 5.0);
        assert_eq!(r.forced_mwh, 5.0);
        // The forced 5 MWh shows up as grid (unmet) energy at hour 2.
        assert!((r.unmet[2] - 5.0).abs() < 1e-9);
        // Total grid energy = full original demand (nothing renewable).
        assert!((r.unmet.sum() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn leftover_backlog_is_accounted_at_horizon_end() {
        let demand = HourlySeries::from_values(start(), vec![10.0, 0.0]);
        let supply = HourlySeries::zeros(start(), 2);
        let mut battery = IdealBattery::new(0.0);
        let r = combined_dispatch(&mut battery, &demand, &supply, cfg(0.4)).unwrap();
        // 4 MWh deferred, never runnable → forced at the end.
        assert!((r.unmet.sum() - 10.0).abs() < 1e-9);
        assert!((r.forced_mwh - 4.0).abs() < 1e-9);
    }

    #[test]
    fn energy_is_conserved() {
        // Effective demand over the run equals original demand (every job
        // runs exactly once, possibly at a different hour).
        let demand = HourlySeries::from_fn(start(), 96, |h| 5.0 + ((h * 13) % 7) as f64);
        let supply = HourlySeries::from_fn(start(), 96, |h| ((h * 29) % 17) as f64);
        let mut battery = ClcBattery::lfp(20.0, 0.8);
        let r = combined_dispatch(&mut battery, &demand, &supply, cfg(0.4)).unwrap();
        assert!(
            (r.effective_demand.sum() - demand.sum()).abs() < 1e-6,
            "{} vs {}",
            r.effective_demand.sum(),
            demand.sum()
        );
    }

    #[test]
    fn combined_beats_battery_only_and_cas_only() {
        // A repeating two-day pattern with tight supply: the combination
        // should leave no more unmet energy than either solution alone.
        let demand = HourlySeries::constant(start(), 96, 10.0);
        let supply = HourlySeries::from_fn(start(), 96, |h| {
            if (8..16).contains(&(h % 24)) {
                28.0
            } else {
                1.0
            }
        });
        let config = cfg(0.4);

        let mut combined_battery = ClcBattery::lfp(40.0, 1.0);
        let combined = combined_dispatch(&mut combined_battery, &demand, &supply, config).unwrap();

        let mut battery_only = ClcBattery::lfp(40.0, 1.0);
        let b = ce_battery::simulate_dispatch(&mut battery_only, &demand, &supply).unwrap();

        let mut no_battery = IdealBattery::new(0.0);
        let c = combined_dispatch(&mut no_battery, &demand, &supply, config).unwrap();

        assert!(combined.unmet.sum() <= b.unmet.sum() + 1e-6);
        assert!(combined.unmet.sum() <= c.unmet.sum() + 1e-6);
    }

    #[test]
    fn capacity_cap_limits_backlog_draining() {
        // Three hours of surplus so the backlog fully drains within the
        // horizon: the cap limits *voluntary* placement per hour.
        let demand = HourlySeries::from_values(start(), vec![10.0, 2.0, 2.0, 2.0]);
        let supply = HourlySeries::from_values(start(), vec![0.0, 50.0, 50.0, 50.0]);
        let mut battery = IdealBattery::new(0.0);
        let config = CombinedConfig {
            max_capacity_mw: 6.0,
            flexible_ratio: 1.0,
            window_hours: 24,
        };
        let r = combined_dispatch(&mut battery, &demand, &supply, config).unwrap();
        // Each surplus hour can only run 4 extra MW on top of its own 2 MW.
        assert!((r.effective_demand[1] - 6.0).abs() < 1e-9);
        assert!((r.effective_demand[2] - 6.0).abs() < 1e-9);
        // 10 deferred: 4 + 4 run in hours 1-2, the last 2 in hour 3.
        assert!((r.effective_demand[3] - 4.0).abs() < 1e-9);
        assert_eq!(r.forced_mwh, 0.0);
    }

    #[test]
    fn stats_match_materialized_reductions_bitwise() {
        // Irregular demand/supply that exercises forced deadlines, partial
        // backlog draining, battery clamping, and leftover forcing.
        let demand = HourlySeries::from_fn(start(), 200, |h| 5.0 + ((h * 13) % 11) as f64);
        let supply = HourlySeries::from_fn(start(), 200, |h| ((h * 29) % 23) as f64);
        let weight = HourlySeries::from_fn(start(), 200, |h| 0.2 + (h % 24) as f64 * 0.02);
        let configs = [
            cfg(0.4),
            cfg(1.0),
            CombinedConfig {
                max_capacity_mw: 12.0,
                flexible_ratio: 0.6,
                window_hours: 3,
            },
        ];
        for config in configs {
            for capacity in [0.0, 8.0, 40.0] {
                let mut full_battery = ClcBattery::lfp(capacity, 0.9);
                let full = combined_dispatch(&mut full_battery, &demand, &supply, config).unwrap();
                let mut stats_battery = ClcBattery::lfp(capacity, 0.9);
                let mut scratch = CombinedScratch::default();
                let stats = combined_dispatch_stats(
                    &mut stats_battery,
                    &demand,
                    &supply,
                    &weight,
                    config,
                    &mut scratch,
                )
                .unwrap();
                assert_eq!(
                    stats.deficit.unmet_mwh.to_bits(),
                    full.unmet.sum().to_bits(),
                    "unmet energy diverged (cap {capacity})"
                );
                assert_eq!(
                    stats.deficit.covered_hours,
                    full.unmet.count_where(|u| u <= COVERED_EPSILON_MWH),
                    "covered hours diverged (cap {capacity})"
                );
                // The streaming fold accumulates u·w hour by hour, so the
                // oracle is a sequential in-order sum (HourlySeries::dot
                // uses the lane-chunked reduction order and would diverge
                // bitwise).
                let sequential_dot: f64 = full
                    .unmet
                    .zip_with(&weight, |u, w| u * w)
                    .unwrap()
                    .values()
                    .iter()
                    .sum();
                assert_eq!(
                    stats.unmet_dot.to_bits(),
                    sequential_dot.to_bits(),
                    "weighted grid draw diverged (cap {capacity})"
                );
                assert_eq!(stats.deferred_mwh.to_bits(), full.deferred_mwh.to_bits());
                assert_eq!(stats.forced_mwh.to_bits(), full.forced_mwh.to_bits());
                assert_eq!(
                    stats.peak_backlog_mwh.to_bits(),
                    full.peak_backlog_mwh.to_bits()
                );
                assert_eq!(
                    stats.equivalent_cycles.to_bits(),
                    full.equivalent_cycles.to_bits()
                );
            }
        }
    }

    #[test]
    fn stats_scratch_is_reusable_and_empty_series_are_fine() {
        let mut scratch = CombinedScratch::default();
        let demand = HourlySeries::from_values(start(), vec![10.0, 0.0]);
        let supply = HourlySeries::zeros(start(), 2);
        let weight = HourlySeries::constant(start(), 2, 1.0);
        let mut battery = IdealBattery::new(0.0);
        // First run leaves backlog state; second run must not see it.
        let first = combined_dispatch_stats(
            &mut battery,
            &demand,
            &supply,
            &weight,
            cfg(0.4),
            &mut scratch,
        )
        .unwrap();
        let second = combined_dispatch_stats(
            &mut battery,
            &demand,
            &supply,
            &weight,
            cfg(0.4),
            &mut scratch,
        )
        .unwrap();
        assert_eq!(first, second);
        // Leftover backlog is forced onto the final hour, as in the
        // materializing path.
        assert!((first.deficit.unmet_mwh - 10.0).abs() < 1e-9);
        assert!((first.forced_mwh - 4.0).abs() < 1e-9);
        // Empty series: no hours, no stats.
        let empty = HourlySeries::zeros(start(), 0);
        let stats =
            combined_dispatch_stats(&mut battery, &empty, &empty, &empty, cfg(0.4), &mut scratch)
                .unwrap();
        assert_eq!(stats.deficit.unmet_mwh, 0.0);
        assert_eq!(stats.deficit.covered_hours, 0);
    }

    #[test]
    fn stats_misaligned_weight_is_an_error() {
        let demand = HourlySeries::zeros(start(), 3);
        let supply = HourlySeries::zeros(start(), 3);
        let weight = HourlySeries::zeros(start(), 4);
        let mut battery = IdealBattery::new(1.0);
        let mut scratch = CombinedScratch::default();
        assert!(combined_dispatch_stats(
            &mut battery,
            &demand,
            &supply,
            &weight,
            cfg(0.4),
            &mut scratch
        )
        .is_err());
    }

    #[test]
    #[should_panic(expected = "window")]
    fn rejects_zero_window() {
        let demand = HourlySeries::zeros(start(), 1);
        let supply = HourlySeries::zeros(start(), 1);
        let mut battery = IdealBattery::new(0.0);
        let _ = combined_dispatch(
            &mut battery,
            &demand,
            &supply,
            CombinedConfig {
                max_capacity_mw: 1.0,
                flexible_ratio: 0.5,
                window_hours: 0,
            },
        );
    }
}
