//! The paper's greedy carbon-aware scheduling algorithm.
//!
//! Inputs (paper §4.3): the maximum datacenter capacity `P_DC_MAX` and the
//! flexible workload ratio `FWR`. Per day, the goal is to minimize the
//! renewable deficit `Σ_h max(P_DC(h) − P_Ren(h), 0)` subject to
//! `P_DC(h) < P_DC_MAX`, with `P_DC(h) × FWR` of each hour's load allowed
//! to shift.

use ce_timeseries::time::HOURS_PER_DAY;
use ce_timeseries::{HourlySeries, TimeSeriesError};
use serde::{Deserialize, Serialize};

/// Configuration for the greedy carbon-aware scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CasConfig {
    /// `P_DC_MAX`: the hard cap on post-scheduling hourly power, MW.
    pub max_capacity_mw: f64,
    /// `FWR`: fraction of each hour's load that may shift (0..=1).
    pub flexible_ratio: f64,
}

/// Result of a scheduling run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleResult {
    /// The post-scheduling demand series ("Balanced Power Load").
    pub shifted_demand: HourlySeries,
    /// Total energy moved between hours, MWh.
    pub energy_shifted_mwh: f64,
}

/// Reusable buffers for [`GreedyScheduler::schedule_with`] /
/// [`GreedyScheduler::schedule_by_cost_with`].
///
/// A scheduling run needs a year-long shifted-load buffer, a year-long
/// cost buffer, and a day-long ranking buffer; sweep loops that allocate
/// them per call churn megabytes per design point. A default-constructed
/// scratch sizes its buffers lazily on first use and reuses them for every
/// subsequent call, so steady-state scheduling performs no heap
/// allocation.
#[derive(Debug, Clone, Default)]
pub struct ScheduleScratch {
    /// Post-scheduling load, one value per input hour.
    shifted: Vec<f64>,
    /// Per-hour cost signal (renewable deficit `d − s` for
    /// [`GreedyScheduler::schedule_with`]).
    cost: Vec<f64>,
    /// Per-day hour indices ranked by cost.
    order: Vec<u32>,
    /// Sort workspace: packed `(total_cmp-ordered cost bits, hour)` keys
    /// for one day, mirroring [`CostOrder::rebuild_orders`].
    sort_keys: Vec<u128>,
}

impl ScheduleScratch {
    /// The post-scheduling demand of the most recent run (one value per
    /// input hour; empty before the first run).
    #[must_use]
    pub fn shifted(&self) -> &[f64] {
        &self.shifted
    }
}

/// Precomputed per-day cost permutations (plus the cost signal they rank),
/// reusable across every scheduling run that shares the cost series.
///
/// `schedule_day`'s dominant work is ranking the day's hours by cost —
/// the cost series depends only on demand and supply, yet the per-point
/// sweep path re-sorted it for every battery/CAS design point in a supply
/// group. Building a `CostOrder` once per group and scheduling through
/// [`GreedyScheduler::schedule_with_order`] /
/// [`GreedyScheduler::schedule_by_cost_with_order`] hoists both the cost
/// fill and the 365 daily sorts out of the per-point path.
///
/// The stored permutation of each full day is exactly the stable sort by
/// `f64::total_cmp` that the uncached path's insertion sort produces
/// (ties keep hour order), so cached and uncached scheduling are
/// bitwise-identical; a trailing partial day is excluded, mirroring the
/// schedulers. Buffers are reused across `rebuild_*` calls, so a warm
/// `CostOrder` re-ranks without allocating.
#[derive(Debug, Clone, Default)]
pub struct CostOrder {
    /// Length of the source cost series (including any partial day).
    source_len: usize,
    /// The cost signal over the full days, one value per hour.
    cost: Vec<f64>,
    /// Concatenated per-day permutations: for each full day, the local
    /// hour indices `0..HOURS_PER_DAY` ranked by ascending cost.
    order: Vec<u32>,
    /// Sort workspace: packed `(total_cmp-ordered cost bits, local hour)`
    /// keys for the whole year.
    sort_buf: Vec<u128>,
}

impl CostOrder {
    /// Builds the per-day permutations for an arbitrary per-hour cost
    /// signal (the ranking [`GreedyScheduler::schedule_by_cost`] uses).
    #[must_use]
    pub fn from_cost(cost: &[f64]) -> Self {
        let mut this = Self::default();
        this.rebuild_from_cost(cost);
        this
    }

    /// Builds the per-day permutations for the renewable-deficit cost
    /// `d − s` (the ranking [`GreedyScheduler::schedule`] uses).
    ///
    /// # Errors
    ///
    /// Returns an alignment error if the series are misaligned.
    pub fn from_deficit(
        demand: &HourlySeries,
        supply: &HourlySeries,
    ) -> Result<Self, TimeSeriesError> {
        let mut this = Self::default();
        this.rebuild_from_deficit(demand, supply)?;
        Ok(this)
    }

    /// Re-ranks in place for a new cost signal, reusing the buffers.
    pub fn rebuild_from_cost(&mut self, cost: &[f64]) {
        self.source_len = cost.len();
        // ce:allow(arith, reason = "len % k never exceeds len, so the difference cannot underflow")
        let full = cost.len() - cost.len() % HOURS_PER_DAY;
        self.cost.clear();
        self.cost.extend(cost.iter().take(full));
        self.rebuild_orders();
    }

    /// Re-ranks in place for a new demand/supply pair, reusing the
    /// buffers.
    ///
    /// # Errors
    ///
    /// Returns an alignment error if the series are misaligned.
    pub fn rebuild_from_deficit(
        &mut self,
        demand: &HourlySeries,
        supply: &HourlySeries,
    ) -> Result<(), TimeSeriesError> {
        demand.check_aligned(supply)?;
        self.rebuild_from_deficit_slices(demand.values(), supply.values());
        Ok(())
    }

    /// Slice-level [`CostOrder::rebuild_from_deficit`] for callers whose
    /// alignment is already an invariant (e.g. a sweep's supply buffer is
    /// shaped from its demand trace): infallible, so hot loops carry no
    /// error path. If the lengths do differ, the shorter one is ranked
    /// and recorded as [`CostOrder::source_len`], which the schedulers'
    /// own length check then rejects.
    // ce:hot
    pub fn rebuild_from_deficit_slices(&mut self, demand: &[f64], supply: &[f64]) {
        self.source_len = demand.len().min(supply.len());
        let full = self.source_len - self.source_len % HOURS_PER_DAY;
        self.cost.clear();
        self.cost
            .extend(demand.iter().zip(supply).take(full).map(|(d, s)| d - s));
        self.rebuild_orders();
    }

    /// Length of the source series this order was built from (the
    /// schedulers require it to match the demand they are given).
    #[must_use]
    pub fn source_len(&self) -> usize {
        self.source_len
    }

    /// Number of full days ranked.
    #[must_use]
    pub fn days(&self) -> usize {
        self.order.len() / HOURS_PER_DAY
    }

    /// Re-sorts every day of `self.cost` into `self.order`. Each hour is
    /// packed into one integer key — the cost's `total_cmp`-ordered bits
    /// above, the hour index below — so sorting keys on unsigned order
    /// equals sorting `(cost, hour)` pairs on (cost by `total_cmp`, then
    /// hour). That composite yields the same permutation as stably
    /// sorting hour indices by cost: the hour tiebreak hand-resolves
    /// equal costs to ascending hour order, which is exactly what
    /// stability would preserve — and because the keys are unique, the
    /// (faster, allocation-free) unstable integer sort produces that
    /// permutation deterministically.
    // ce:hot
    fn rebuild_orders(&mut self) {
        self.sort_buf.clear();
        self.sort_buf.extend(
            self.cost
                .iter()
                // ce:allow(cast, reason = "the 24-hour day constant fits u32")
                .zip((0..HOURS_PER_DAY as u32).cycle())
                // ce:allow(arith, reason = "64 key bits shifted 32 left still fit a u128")
                .map(|(&cost, hour)| (u128::from(ordered_bits(cost)) << 32) | u128::from(hour)),
        );
        for day_keys in self.sort_buf.chunks_exact_mut(HOURS_PER_DAY) {
            day_keys.sort_unstable();
        }
        self.order.clear();
        self.order
            // ce:allow(cast, reason = "intentional: the low 32 bits of the packed key are the hour ordinal")
            .extend(self.sort_buf.iter().map(|&key| key as u32));
    }
}

/// Maps a cost onto bits whose plain unsigned order is `f64::total_cmp`
/// order: `total_cmp` compares sign-magnitude bit patterns mapped to
/// two's complement, so flipping all bits of negatives and the sign bit
/// of non-negatives linearizes it. Shared by both packed-key day sorts.
// ce:hot
fn ordered_bits(cost: f64) -> u64 {
    let bits = cost.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits ^ (1u64 << 63)
    }
}

/// Widens a packed `u32` hour ordinal back into a slice index; the one
/// sanctioned cast site for the order buffers, so the transfer loops stay
/// free of ad-hoc `as` conversions.
// ce:hot
fn idx(hour: u32) -> usize {
    // ce:allow(cast, reason = "u32 hour ordinal widening into usize; every supported target is at least 32-bit")
    hour as usize
}

/// Reads one hour's `(cost, load)` pair when a transfer cursor lands on
/// it. Centralizing the cursor reads keeps the transfer loop's slice
/// accesses in one place, and the total `.get` form keeps them
/// panic-free: cursors only ever land on in-range hours (`order` holds
/// `0..len`), and the unreachable fallback — an infinitely expensive,
/// empty slot — would stall the transfer loop rather than corrupt it.
// ce:hot
fn cursor_slot(cost: &[f64], load: &[f64], hour: usize) -> (f64, f64) {
    match (cost.get(hour), load.get(hour)) {
        (Some(&c), Some(&l)) => (c, l),
        _ => (f64::INFINITY, 0.0),
    }
}

/// Commits a cursor's mirrored load back to the day slice (total for the
/// same reason as [`cursor_slot`]: an out-of-range hour cannot happen and
/// must not panic the sweep).
// ce:hot
fn commit_load(load: &mut [f64], hour: usize, value: f64) {
    if let Some(slot) = load.get_mut(hour) {
        *slot = value;
    }
}

/// The paper's greedy carbon-aware scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GreedyScheduler {
    config: CasConfig,
}

impl GreedyScheduler {
    /// Creates a scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `flexible_ratio` is outside `[0, 1]` or
    /// `max_capacity_mw` is negative.
    pub fn new(config: CasConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.flexible_ratio),
            "flexible ratio must be in [0, 1]"
        );
        assert!(
            config.max_capacity_mw >= 0.0,
            "capacity must be non-negative"
        );
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> CasConfig {
        self.config
    }

    /// Schedules against a renewable `supply` series: load moves from the
    /// hours with the deepest renewable deficit to the hours with the most
    /// surplus (equivalently, from high to low carbon intensity when the
    /// marginal grid fuel is fixed).
    ///
    /// # Errors
    ///
    /// Returns an alignment error if the series are misaligned.
    pub fn schedule(
        &self,
        demand: &HourlySeries,
        supply: &HourlySeries,
    ) -> Result<ScheduleResult, TimeSeriesError> {
        let mut scratch = ScheduleScratch::default();
        let energy_shifted_mwh = self.schedule_with(demand, supply, &mut scratch)?;
        Ok(ScheduleResult {
            shifted_demand: HourlySeries::from_values(demand.start(), scratch.shifted),
            energy_shifted_mwh,
        })
    }

    /// [`GreedyScheduler::schedule`] into caller-owned buffers: the
    /// post-scheduling load lands in `scratch.shifted()` and the total
    /// energy moved is returned, with no per-call allocation once the
    /// scratch is warm. Results are bitwise-identical to
    /// [`GreedyScheduler::schedule`], which is a thin wrapper over this.
    ///
    /// # Errors
    ///
    /// Returns an alignment error if the series are misaligned.
    // ce:hot
    pub fn schedule_with(
        &self,
        demand: &HourlySeries,
        supply: &HourlySeries,
        scratch: &mut ScheduleScratch,
    ) -> Result<f64, TimeSeriesError> {
        demand.check_aligned(supply)?;
        let ScheduleScratch {
            shifted,
            cost,
            order,
            sort_keys,
        } = scratch;
        shifted.clear();
        shifted.extend_from_slice(demand.values());
        cost.clear();
        cost.extend(
            demand
                .values()
                .iter()
                .zip(supply.values())
                .map(|(d, s)| d - s),
        );
        let mut total_moved = 0.0;
        let loads = shifted.chunks_exact_mut(HOURS_PER_DAY);
        let costs = cost.chunks_exact(HOURS_PER_DAY);
        let supplies = supply.values().chunks_exact(HOURS_PER_DAY);
        for ((load, cost), sup) in loads.zip(costs).zip(supplies) {
            total_moved += self.schedule_day(load, cost, Some(sup), order, sort_keys);
        }
        Ok(total_moved)
    }

    /// Schedules against an arbitrary per-hour carbon-cost signal (for
    /// example the grid's hourly carbon intensity, as in the paper's
    /// Figure 11).
    ///
    /// # Errors
    ///
    /// Returns an alignment error if the series are misaligned.
    pub fn schedule_by_cost(
        &self,
        demand: &HourlySeries,
        cost: &HourlySeries,
    ) -> Result<ScheduleResult, TimeSeriesError> {
        let mut scratch = ScheduleScratch::default();
        let energy_shifted_mwh = self.schedule_by_cost_with(demand, cost, &mut scratch)?;
        Ok(ScheduleResult {
            shifted_demand: HourlySeries::from_values(demand.start(), scratch.shifted),
            energy_shifted_mwh,
        })
    }

    /// [`GreedyScheduler::schedule_by_cost`] into caller-owned buffers,
    /// analogous to [`GreedyScheduler::schedule_with`]: the shifted load
    /// lands in `scratch.shifted()` and the energy moved is returned.
    ///
    /// # Errors
    ///
    /// Returns an alignment error if the series are misaligned.
    // ce:hot
    pub fn schedule_by_cost_with(
        &self,
        demand: &HourlySeries,
        cost: &HourlySeries,
        scratch: &mut ScheduleScratch,
    ) -> Result<f64, TimeSeriesError> {
        demand.check_aligned(cost)?;
        scratch.shifted.clear();
        scratch.shifted.extend_from_slice(demand.values());
        let mut total_moved = 0.0;
        let loads = scratch.shifted.chunks_exact_mut(HOURS_PER_DAY);
        let costs = cost.values().chunks_exact(HOURS_PER_DAY);
        for (load, cost) in loads.zip(costs) {
            total_moved +=
                self.schedule_day(load, cost, None, &mut scratch.order, &mut scratch.sort_keys);
        }
        Ok(total_moved)
    }

    /// [`GreedyScheduler::schedule_with`] with a precomputed
    /// [`CostOrder`] (built from the *same* demand/supply pair via
    /// [`CostOrder::from_deficit`] / [`CostOrder::rebuild_from_deficit`]):
    /// the per-day cost ranking — the dominant cost of the uncached path —
    /// is reused instead of recomputed, and results are bitwise-identical.
    ///
    /// Sweep loops exploit this by building one `CostOrder` per supply
    /// group and scheduling every design point in the group through it.
    ///
    /// # Errors
    ///
    /// Returns an alignment error if the series are misaligned, or a
    /// length mismatch if `order` was built from a series of a different
    /// length than `demand`.
    // ce:hot
    pub fn schedule_with_order(
        &self,
        demand: &HourlySeries,
        supply: &HourlySeries,
        order: &CostOrder,
        scratch: &mut ScheduleScratch,
    ) -> Result<f64, TimeSeriesError> {
        demand.check_aligned(supply)?;
        if order.source_len() != demand.len() {
            return Err(TimeSeriesError::LengthMismatch {
                left: order.source_len(),
                right: demand.len(),
            });
        }
        scratch.shifted.clear();
        scratch.shifted.extend_from_slice(demand.values());
        let mut total_moved = 0.0;
        let loads = scratch.shifted.chunks_exact_mut(HOURS_PER_DAY);
        let costs = order.cost.chunks_exact(HOURS_PER_DAY);
        let orders = order.order.chunks_exact(HOURS_PER_DAY);
        let supplies = supply.values().chunks_exact(HOURS_PER_DAY);
        for (((load, cost), ord), sup) in loads.zip(costs).zip(orders).zip(supplies) {
            total_moved += self.transfer_day(load, cost, Some(sup), ord);
        }
        Ok(total_moved)
    }

    /// [`GreedyScheduler::schedule_by_cost_with`] with a precomputed
    /// [`CostOrder`] (built from the *same* cost series via
    /// [`CostOrder::from_cost`] / [`CostOrder::rebuild_from_cost`]);
    /// results are bitwise-identical to the uncached path.
    ///
    /// # Errors
    ///
    /// Returns a length mismatch if `order` was built from a series of a
    /// different length than `demand`.
    // ce:hot
    pub fn schedule_by_cost_with_order(
        &self,
        demand: &HourlySeries,
        order: &CostOrder,
        scratch: &mut ScheduleScratch,
    ) -> Result<f64, TimeSeriesError> {
        if order.source_len() != demand.len() {
            return Err(TimeSeriesError::LengthMismatch {
                left: order.source_len(),
                right: demand.len(),
            });
        }
        scratch.shifted.clear();
        scratch.shifted.extend_from_slice(demand.values());
        let mut total_moved = 0.0;
        let loads = scratch.shifted.chunks_exact_mut(HOURS_PER_DAY);
        let costs = order.cost.chunks_exact(HOURS_PER_DAY);
        let orders = order.order.chunks_exact(HOURS_PER_DAY);
        for ((load, cost), ord) in loads.zip(costs).zip(orders) {
            total_moved += self.transfer_day(load, cost, None, ord);
        }
        Ok(total_moved)
    }

    /// Greedy within one day; returns energy moved. `order` and `keys`
    /// are caller-owned work buffers (cleared and refilled here).
    ///
    /// When a `supply` slice is given, a destination hour additionally
    /// stops absorbing load once its remaining renewable surplus is used
    /// up — moving more would merely relocate the deficit.
    // ce:hot
    fn schedule_day(
        &self,
        load: &mut [f64],
        cost: &[f64],
        supply: Option<&[f64]>,
        order: &mut Vec<u32>,
        keys: &mut Vec<u128>,
    ) -> f64 {
        // Hours ranked by cost: sources from most expensive down,
        // destinations from cheapest up. The packed-key sort mirrors
        // [`CostOrder::rebuild_orders`] — cost's `total_cmp`-ordered bits
        // above the hour ordinal — so the unique-key unstable sort yields
        // exactly the stable-sort permutation (the hour tiebreak *is*
        // stability), stays allocation-free on warm buffers
        // (`slice::sort_by` may allocate), and walks no indexes.
        keys.clear();
        keys.extend(
            cost.iter()
                .zip(0u32..)
                // ce:allow(arith, reason = "64 key bits shifted 32 left still fit a u128")
                .map(|(&c, hour)| (u128::from(ordered_bits(c)) << 32) | u128::from(hour)),
        );
        keys.sort_unstable();
        order.clear();
        order
            // ce:allow(cast, reason = "intentional: the low 32 bits of the packed key are the hour ordinal")
            .extend(keys.iter().map(|&key| key as u32));
        self.transfer_day(load, cost, supply, order)
    }

    /// The transfer phase shared by the sorting and permutation-cached
    /// paths: walks `order` (the day's hours ranked by ascending cost)
    /// from both ends, moving flexible load from the most expensive hours
    /// into the cheapest. Returns the energy moved.
    ///
    /// The cursors' slots are mirrored into locals (`src_load`, `budget`,
    /// `dst_load`, ...) and written back only when a cursor advances or
    /// the loop exits: the two cursor positions are always distinct slots
    /// (the loop stops before they meet), so the mirrors keep the serial
    /// chain of float ops — and therefore every result bit, NaN inputs
    /// included — identical to operating on the slices directly, while
    /// the iteration itself touches no memory. The per-source budget is
    /// `original load × FWR`; a source's load is first mutated *after*
    /// its budget is mirrored, so computing it on cursor advance equals
    /// precomputing all budgets up front (what an earlier revision's
    /// `movable` buffer did).
    // ce:hot
    fn transfer_day(
        &self,
        load: &mut [f64],
        cost: &[f64],
        supply: Option<&[f64]>,
        order: &[u32],
    ) -> f64 {
        let ratio = self.config.flexible_ratio;
        let cap = self.config.max_capacity_mw;

        // A day with no movable budget (zero flexibility, or an all-idle
        // day) cannot transfer anything: every candidate amount is capped
        // by a budget ≤ 1e-12 and fails the `> 1e-12` move threshold
        // below, so skipping the loop is a bitwise no-op. (NaN budgets
        // fail the `<=` test and conservatively fall through.)
        if load.iter().all(|&l| l * ratio <= 1e-12) {
            return 0.0;
        }

        // Destinations walk `order` from the cheap end, sources from the
        // expensive end. Taking both ends off a double-ended iterator
        // reproduces the index-pair walk (`order[dest_idx]` /
        // `order[src_idx - 1]` while `dest_idx < src_idx`): when one side
        // exhausts the middle, the index walk's next step would alias the
        // cursors onto the same hour and break on `cost[dst] >= cost[src]`
        // without moving anything, so breaking on `None` is equivalent.
        let mut ends = order.iter();
        let Some(&first) = ends.next() else {
            return 0.0;
        };
        let Some(&last) = ends.next_back() else {
            return 0.0; // single-hour day: nowhere cheaper to move to
        };
        let mut dst = idx(first);
        let mut src = idx(last);
        // A destination absorbs up to `limit − load`: `limit` folds the
        // capacity cap and the hour's renewable supply into one bound per
        // destination, hoisting the supply clamp off the per-iteration
        // dependency chain (rounding is monotone, so clamping the smaller
        // bound yields the identical headroom the two-sided clamp did).
        // Total like the cursor helpers: a missing supply hour (which
        // cannot happen — the chunks are aligned) imposes no clamp.
        let limit_of = |hour: usize| match supply {
            Some(s) => cap.min(s.get(hour).copied().unwrap_or(f64::INFINITY)),
            None => cap,
        };
        let (mut dst_cost, mut dst_load) = cursor_slot(cost, load, dst);
        let mut dst_limit = limit_of(dst);
        let (mut src_cost, mut src_load) = cursor_slot(cost, load, src);
        let mut budget = src_load * ratio;

        let mut moved = 0.0;
        loop {
            // Only profitable to move load to a strictly cheaper hour.
            if dst_cost >= src_cost {
                break;
            }
            let headroom = (dst_limit - dst_load).max(0.0);
            // A budget-bound move transfers the budget itself: taking the
            // branch instead of `min` keeps full drains (the common case
            // in sweeps) off the headroom dependency chain, while the
            // `min` fallback preserves the tie/NaN selection exactly.
            let amount = if budget < headroom {
                budget
            } else {
                budget.min(headroom)
            };
            if amount > 1e-12 {
                src_load -= amount;
                dst_load += amount;
                budget -= amount;
                moved += amount;
            }
            // Advance whichever side is exhausted, committing its mirror.
            if budget <= 1e-12 {
                commit_load(load, src, src_load);
                match ends.next_back() {
                    Some(&s) => {
                        src = idx(s);
                        (src_cost, src_load) = cursor_slot(cost, load, src);
                        budget = src_load * ratio;
                    }
                    None => break,
                }
            } else {
                commit_load(load, dst, dst_load);
                match ends.next() {
                    Some(&d) => {
                        dst = idx(d);
                        (dst_cost, dst_load) = cursor_slot(cost, load, dst);
                        dst_limit = limit_of(dst);
                    }
                    None => break,
                }
            }
        }
        commit_load(load, src, src_load);
        commit_load(load, dst, dst_load);
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_timeseries::Timestamp;

    fn start() -> Timestamp {
        Timestamp::start_of_year(2020)
    }

    fn solar_day_supply() -> HourlySeries {
        HourlySeries::from_fn(start(), 24, |h| {
            if (6..18).contains(&(h % 24)) {
                25.0
            } else {
                0.0
            }
        })
    }

    fn deficit_after(demand: &HourlySeries, supply: &HourlySeries) -> f64 {
        demand
            .zip_with(supply, |d, s| (d - s).max(0.0))
            .unwrap()
            .sum()
    }

    #[test]
    fn shifting_reduces_renewable_deficit() {
        let demand = HourlySeries::constant(start(), 24, 10.0);
        let supply = solar_day_supply();
        let sched = GreedyScheduler::new(CasConfig {
            max_capacity_mw: 20.0,
            flexible_ratio: 0.4,
        });
        let result = sched.schedule(&demand, &supply).unwrap();
        let before = deficit_after(&demand, &supply);
        let after = deficit_after(&result.shifted_demand, &supply);
        assert!(after < before, "deficit {after} !< {before}");
        assert!(result.energy_shifted_mwh > 0.0);
    }

    #[test]
    fn daily_energy_is_conserved() {
        let demand = HourlySeries::from_fn(start(), 72, |h| 10.0 + (h % 5) as f64);
        let supply = HourlySeries::from_fn(start(), 72, |h| ((h * 7) % 23) as f64);
        let sched = GreedyScheduler::new(CasConfig {
            max_capacity_mw: 30.0,
            flexible_ratio: 0.5,
        });
        let result = sched.schedule(&demand, &supply).unwrap();
        for day in 0..3 {
            let orig: f64 = demand.values()[day * 24..(day + 1) * 24].iter().sum();
            let new: f64 = result.shifted_demand.values()[day * 24..(day + 1) * 24]
                .iter()
                .sum();
            assert!((orig - new).abs() < 1e-9, "day {day}: {orig} vs {new}");
        }
    }

    #[test]
    fn capacity_cap_is_respected() {
        let demand = HourlySeries::constant(start(), 24, 10.0);
        let supply = solar_day_supply();
        let cap = 12.5;
        let sched = GreedyScheduler::new(CasConfig {
            max_capacity_mw: cap,
            flexible_ratio: 1.0,
        });
        let result = sched.schedule(&demand, &supply).unwrap();
        for (_, v) in result.shifted_demand.iter() {
            assert!(v <= cap + 1e-9, "hour exceeds cap: {v}");
        }
    }

    #[test]
    fn zero_flexibility_changes_nothing() {
        let demand = HourlySeries::from_fn(start(), 48, |h| 5.0 + (h % 3) as f64);
        let supply = HourlySeries::zeros(start(), 48);
        let sched = GreedyScheduler::new(CasConfig {
            max_capacity_mw: 100.0,
            flexible_ratio: 0.0,
        });
        let result = sched.schedule(&demand, &supply).unwrap();
        assert_eq!(result.shifted_demand, demand);
        assert_eq!(result.energy_shifted_mwh, 0.0);
    }

    #[test]
    fn more_flexibility_shifts_at_least_as_much_deficit_away() {
        let demand = HourlySeries::constant(start(), 24, 10.0);
        let supply = solar_day_supply();
        let deficits: Vec<f64> = [0.1, 0.4, 1.0]
            .iter()
            .map(|&fwr| {
                let sched = GreedyScheduler::new(CasConfig {
                    max_capacity_mw: 25.0,
                    flexible_ratio: fwr,
                });
                let r = sched.schedule(&demand, &supply).unwrap();
                deficit_after(&r.shifted_demand, &supply)
            })
            .collect();
        assert!(deficits[0] >= deficits[1]);
        assert!(deficits[1] >= deficits[2]);
    }

    #[test]
    fn no_movement_when_cost_is_flat() {
        let demand = HourlySeries::constant(start(), 24, 10.0);
        let flat_cost = HourlySeries::constant(start(), 24, 3.0);
        let sched = GreedyScheduler::new(CasConfig {
            max_capacity_mw: 100.0,
            flexible_ratio: 1.0,
        });
        let result = sched.schedule_by_cost(&demand, &flat_cost).unwrap();
        assert_eq!(result.energy_shifted_mwh, 0.0);
    }

    #[test]
    fn load_moves_toward_cheap_hours() {
        let demand = HourlySeries::constant(start(), 24, 10.0);
        let cost = HourlySeries::from_fn(start(), 24, |h| if h < 12 { 1.0 } else { 10.0 });
        let sched = GreedyScheduler::new(CasConfig {
            max_capacity_mw: 30.0,
            flexible_ratio: 0.5,
        });
        let result = sched.schedule_by_cost(&demand, &cost).unwrap();
        let cheap: f64 = result.shifted_demand.values()[..12].iter().sum();
        let dear: f64 = result.shifted_demand.values()[12..].iter().sum();
        assert!(cheap > dear);
        // Expensive hours retain their inflexible 50%.
        for &v in &result.shifted_demand.values()[12..] {
            assert!(v >= 5.0 - 1e-9);
        }
    }

    #[test]
    fn partial_trailing_day_is_left_unscheduled() {
        let demand = HourlySeries::constant(start(), 30, 10.0);
        let supply = HourlySeries::zeros(start(), 30);
        let sched = GreedyScheduler::new(CasConfig {
            max_capacity_mw: 100.0,
            flexible_ratio: 1.0,
        });
        let result = sched.schedule(&demand, &supply).unwrap();
        // Hours 24..30 are untouched (not a full day).
        assert_eq!(
            &result.shifted_demand.values()[24..],
            &demand.values()[24..]
        );
    }

    #[test]
    fn schedule_with_matches_schedule_bitwise() {
        let demand = HourlySeries::from_fn(start(), 96, |h| 8.0 + ((h * 11) % 9) as f64);
        let supply = HourlySeries::from_fn(start(), 96, |h| ((h * 5) % 21) as f64);
        let sched = GreedyScheduler::new(CasConfig {
            max_capacity_mw: 18.0,
            flexible_ratio: 0.4,
        });
        let full = sched.schedule(&demand, &supply).unwrap();
        let mut scratch = ScheduleScratch::default();
        let moved = sched.schedule_with(&demand, &supply, &mut scratch).unwrap();
        assert_eq!(scratch.shifted(), full.shifted_demand.values());
        assert_eq!(moved.to_bits(), full.energy_shifted_mwh.to_bits());
    }

    #[test]
    fn schedule_by_cost_with_matches_schedule_by_cost() {
        let demand = HourlySeries::from_fn(start(), 48, |h| 6.0 + (h % 4) as f64);
        let cost = HourlySeries::from_fn(start(), 48, |h| ((h * 17) % 10) as f64);
        let sched = GreedyScheduler::new(CasConfig {
            max_capacity_mw: 40.0,
            flexible_ratio: 0.7,
        });
        let full = sched.schedule_by_cost(&demand, &cost).unwrap();
        let mut scratch = ScheduleScratch::default();
        let moved = sched
            .schedule_by_cost_with(&demand, &cost, &mut scratch)
            .unwrap();
        assert_eq!(scratch.shifted(), full.shifted_demand.values());
        assert_eq!(moved.to_bits(), full.energy_shifted_mwh.to_bits());
    }

    #[test]
    fn scratch_is_reusable_across_runs_of_different_lengths() {
        let sched = GreedyScheduler::new(CasConfig {
            max_capacity_mw: 25.0,
            flexible_ratio: 0.5,
        });
        let mut scratch = ScheduleScratch::default();
        let long_demand = HourlySeries::constant(start(), 72, 10.0);
        let long_supply = HourlySeries::from_fn(start(), 72, |h| ((h * 3) % 20) as f64);
        sched
            .schedule_with(&long_demand, &long_supply, &mut scratch)
            .unwrap();
        let short_demand = HourlySeries::constant(start(), 24, 10.0);
        let short_supply = solar_day_supply();
        let moved = sched
            .schedule_with(&short_demand, &short_supply, &mut scratch)
            .unwrap();
        let fresh = sched.schedule(&short_demand, &short_supply).unwrap();
        assert_eq!(scratch.shifted(), fresh.shifted_demand.values());
        assert_eq!(moved, fresh.energy_shifted_mwh);
        assert_eq!(scratch.shifted().len(), 24);
    }

    /// Irregular multi-day fixture with cost ties, flat stretches, zero
    /// hours, and a trailing partial day.
    fn uneven_fixture() -> (HourlySeries, HourlySeries) {
        let demand = HourlySeries::from_fn(start(), 24 * 7 + 5, |h| {
            8.0 + ((h * 11) % 9) as f64 + if h % 31 == 0 { 0.0 } else { 0.25 }
        });
        let supply = HourlySeries::from_fn(start(), 24 * 7 + 5, |h| {
            // Repeats every 12 hours within a day, forcing cost ties.
            ((h % 12) * 3 % 17) as f64 + if h / 24 == 2 { 0.0 } else { 1.5 }
        });
        (demand, supply)
    }

    #[test]
    fn cached_order_matches_sorting_path_bitwise() {
        let (demand, supply) = uneven_fixture();
        for (cap, fwr) in [(18.0, 0.4), (12.5, 1.0), (100.0, 0.05), (9.0, 0.0)] {
            let sched = GreedyScheduler::new(CasConfig {
                max_capacity_mw: cap,
                flexible_ratio: fwr,
            });
            let mut sorted = ScheduleScratch::default();
            let moved_sorted = sched.schedule_with(&demand, &supply, &mut sorted).unwrap();
            let order = CostOrder::from_deficit(&demand, &supply).unwrap();
            let mut cached = ScheduleScratch::default();
            let moved_cached = sched
                .schedule_with_order(&demand, &supply, &order, &mut cached)
                .unwrap();
            let sorted_bits: Vec<u64> = sorted.shifted().iter().map(|v| v.to_bits()).collect();
            let cached_bits: Vec<u64> = cached.shifted().iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                sorted_bits, cached_bits,
                "shifted diverged (cap {cap}, fwr {fwr})"
            );
            assert_eq!(
                moved_sorted.to_bits(),
                moved_cached.to_bits(),
                "moved diverged (cap {cap}, fwr {fwr})"
            );
        }
    }

    #[test]
    fn cached_order_matches_by_cost_path_bitwise() {
        let demand = HourlySeries::from_fn(start(), 24 * 5, |h| 6.0 + (h % 4) as f64);
        // Ties across hours (cost repeats every 6 hours) plus NaN-free
        // negatives to exercise the full total_cmp ordering.
        let cost = HourlySeries::from_fn(start(), 24 * 5, |h| ((h % 6) as f64) - 2.0);
        let sched = GreedyScheduler::new(CasConfig {
            max_capacity_mw: 40.0,
            flexible_ratio: 0.7,
        });
        let mut sorted = ScheduleScratch::default();
        let moved_sorted = sched
            .schedule_by_cost_with(&demand, &cost, &mut sorted)
            .unwrap();
        let order = CostOrder::from_cost(cost.values());
        let mut cached = ScheduleScratch::default();
        let moved_cached = sched
            .schedule_by_cost_with_order(&demand, &order, &mut cached)
            .unwrap();
        let sorted_bits: Vec<u64> = sorted.shifted().iter().map(|v| v.to_bits()).collect();
        let cached_bits: Vec<u64> = cached.shifted().iter().map(|v| v.to_bits()).collect();
        assert_eq!(sorted_bits, cached_bits);
        assert_eq!(moved_sorted.to_bits(), moved_cached.to_bits());
    }

    #[test]
    fn cost_order_is_reusable_across_rebuilds() {
        let (demand, supply) = uneven_fixture();
        let mut order = CostOrder::from_deficit(&demand, &supply).unwrap();
        // Rebuild for a different, shorter pair; must match a fresh build.
        let d2 = HourlySeries::from_fn(start(), 48, |h| 5.0 + (h % 7) as f64);
        let s2 = HourlySeries::from_fn(start(), 48, |h| ((h * 13) % 19) as f64);
        order.rebuild_from_deficit(&d2, &s2).unwrap();
        let fresh = CostOrder::from_deficit(&d2, &s2).unwrap();
        assert_eq!(order.source_len(), fresh.source_len());
        assert_eq!(order.days(), fresh.days());
        assert_eq!(order.order, fresh.order);
        let sched = GreedyScheduler::new(CasConfig {
            max_capacity_mw: 20.0,
            flexible_ratio: 0.5,
        });
        let mut cached = ScheduleScratch::default();
        let moved = sched
            .schedule_with_order(&d2, &s2, &order, &mut cached)
            .unwrap();
        let mut sorted = ScheduleScratch::default();
        let moved_sorted = sched.schedule_with(&d2, &s2, &mut sorted).unwrap();
        assert_eq!(cached.shifted(), sorted.shifted());
        assert_eq!(moved.to_bits(), moved_sorted.to_bits());
    }

    #[test]
    fn stale_cost_order_length_is_an_error() {
        let (demand, supply) = uneven_fixture();
        let order = CostOrder::from_deficit(&demand, &supply).unwrap();
        let short_demand = HourlySeries::zeros(start(), 48);
        let short_supply = HourlySeries::zeros(start(), 48);
        let sched = GreedyScheduler::new(CasConfig {
            max_capacity_mw: 10.0,
            flexible_ratio: 0.4,
        });
        let mut scratch = ScheduleScratch::default();
        assert!(sched
            .schedule_with_order(&short_demand, &short_supply, &order, &mut scratch)
            .is_err());
        assert!(sched
            .schedule_by_cost_with_order(&short_demand, &order, &mut scratch)
            .is_err());
    }

    #[test]
    fn zero_budget_day_skips_transfer_without_changing_results() {
        // All-zero demand gives every day a zero movable budget; the
        // early-skip must leave the load untouched and report zero moved,
        // exactly as the full transfer loop would.
        let demand = HourlySeries::zeros(start(), 48);
        let supply = HourlySeries::from_fn(start(), 48, |h| (h % 5) as f64);
        let sched = GreedyScheduler::new(CasConfig {
            max_capacity_mw: 10.0,
            flexible_ratio: 1.0,
        });
        let mut scratch = ScheduleScratch::default();
        let moved = sched.schedule_with(&demand, &supply, &mut scratch).unwrap();
        assert_eq!(moved, 0.0);
        assert_eq!(scratch.shifted(), demand.values());
    }

    #[test]
    #[should_panic(expected = "flexible ratio")]
    fn rejects_bad_ratio() {
        GreedyScheduler::new(CasConfig {
            max_capacity_mw: 10.0,
            flexible_ratio: 1.5,
        });
    }

    #[test]
    fn misaligned_series_is_an_error() {
        let demand = HourlySeries::zeros(start(), 24);
        let supply = HourlySeries::zeros(start(), 25);
        let sched = GreedyScheduler::new(CasConfig {
            max_capacity_mw: 10.0,
            flexible_ratio: 0.4,
        });
        assert!(sched.schedule(&demand, &supply).is_err());
    }
}
