//! The paper's greedy carbon-aware scheduling algorithm.
//!
//! Inputs (paper §4.3): the maximum datacenter capacity `P_DC_MAX` and the
//! flexible workload ratio `FWR`. Per day, the goal is to minimize the
//! renewable deficit `Σ_h max(P_DC(h) − P_Ren(h), 0)` subject to
//! `P_DC(h) < P_DC_MAX`, with `P_DC(h) × FWR` of each hour's load allowed
//! to shift.

use ce_timeseries::time::HOURS_PER_DAY;
use ce_timeseries::{HourlySeries, TimeSeriesError};
use serde::{Deserialize, Serialize};

/// Configuration for the greedy carbon-aware scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CasConfig {
    /// `P_DC_MAX`: the hard cap on post-scheduling hourly power, MW.
    pub max_capacity_mw: f64,
    /// `FWR`: fraction of each hour's load that may shift (0..=1).
    pub flexible_ratio: f64,
}

/// Result of a scheduling run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleResult {
    /// The post-scheduling demand series ("Balanced Power Load").
    pub shifted_demand: HourlySeries,
    /// Total energy moved between hours, MWh.
    pub energy_shifted_mwh: f64,
}

/// Reusable buffers for [`GreedyScheduler::schedule_with`] /
/// [`GreedyScheduler::schedule_by_cost_with`].
///
/// A scheduling run needs a year-long shifted-load buffer, a year-long
/// cost buffer, and two day-long work buffers; sweep loops that allocate
/// them per call churn megabytes per design point. A default-constructed
/// scratch sizes its buffers lazily on first use and reuses them for every
/// subsequent call, so steady-state scheduling performs no heap
/// allocation.
#[derive(Debug, Clone, Default)]
pub struct ScheduleScratch {
    /// Post-scheduling load, one value per input hour.
    shifted: Vec<f64>,
    /// Per-hour cost signal (renewable deficit `d − s` for
    /// [`GreedyScheduler::schedule_with`]).
    cost: Vec<f64>,
    /// Per-day movable budget, one value per hour of the day.
    movable: Vec<f64>,
    /// Per-day hour indices ranked by cost.
    order: Vec<usize>,
}

impl ScheduleScratch {
    /// The post-scheduling demand of the most recent run (one value per
    /// input hour; empty before the first run).
    #[must_use]
    pub fn shifted(&self) -> &[f64] {
        &self.shifted
    }
}

/// The paper's greedy carbon-aware scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GreedyScheduler {
    config: CasConfig,
}

impl GreedyScheduler {
    /// Creates a scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `flexible_ratio` is outside `[0, 1]` or
    /// `max_capacity_mw` is negative.
    pub fn new(config: CasConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.flexible_ratio),
            "flexible ratio must be in [0, 1]"
        );
        assert!(
            config.max_capacity_mw >= 0.0,
            "capacity must be non-negative"
        );
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> CasConfig {
        self.config
    }

    /// Schedules against a renewable `supply` series: load moves from the
    /// hours with the deepest renewable deficit to the hours with the most
    /// surplus (equivalently, from high to low carbon intensity when the
    /// marginal grid fuel is fixed).
    ///
    /// # Errors
    ///
    /// Returns an alignment error if the series are misaligned.
    pub fn schedule(
        &self,
        demand: &HourlySeries,
        supply: &HourlySeries,
    ) -> Result<ScheduleResult, TimeSeriesError> {
        let mut scratch = ScheduleScratch::default();
        let energy_shifted_mwh = self.schedule_with(demand, supply, &mut scratch)?;
        Ok(ScheduleResult {
            shifted_demand: HourlySeries::from_values(demand.start(), scratch.shifted),
            energy_shifted_mwh,
        })
    }

    /// [`GreedyScheduler::schedule`] into caller-owned buffers: the
    /// post-scheduling load lands in `scratch.shifted()` and the total
    /// energy moved is returned, with no per-call allocation once the
    /// scratch is warm. Results are bitwise-identical to
    /// [`GreedyScheduler::schedule`], which is a thin wrapper over this.
    ///
    /// # Errors
    ///
    /// Returns an alignment error if the series are misaligned.
    // ce:hot
    pub fn schedule_with(
        &self,
        demand: &HourlySeries,
        supply: &HourlySeries,
        scratch: &mut ScheduleScratch,
    ) -> Result<f64, TimeSeriesError> {
        demand.check_aligned(supply)?;
        scratch.shifted.clear();
        scratch.shifted.extend_from_slice(demand.values());
        scratch.cost.clear();
        scratch.cost.extend(
            demand
                .values()
                .iter()
                .zip(supply.values())
                .map(|(d, s)| d - s),
        );
        let mut total_moved = 0.0;
        let full_days = demand.len() / HOURS_PER_DAY;
        for day in 0..full_days {
            let base = day * HOURS_PER_DAY;
            total_moved += self.schedule_day(
                &mut scratch.shifted[base..base + HOURS_PER_DAY],
                &scratch.cost[base..base + HOURS_PER_DAY],
                Some(&supply.values()[base..base + HOURS_PER_DAY]),
                &mut scratch.movable,
                &mut scratch.order,
            );
        }
        Ok(total_moved)
    }

    /// Schedules against an arbitrary per-hour carbon-cost signal (for
    /// example the grid's hourly carbon intensity, as in the paper's
    /// Figure 11).
    ///
    /// # Errors
    ///
    /// Returns an alignment error if the series are misaligned.
    pub fn schedule_by_cost(
        &self,
        demand: &HourlySeries,
        cost: &HourlySeries,
    ) -> Result<ScheduleResult, TimeSeriesError> {
        let mut scratch = ScheduleScratch::default();
        let energy_shifted_mwh = self.schedule_by_cost_with(demand, cost, &mut scratch)?;
        Ok(ScheduleResult {
            shifted_demand: HourlySeries::from_values(demand.start(), scratch.shifted),
            energy_shifted_mwh,
        })
    }

    /// [`GreedyScheduler::schedule_by_cost`] into caller-owned buffers,
    /// analogous to [`GreedyScheduler::schedule_with`]: the shifted load
    /// lands in `scratch.shifted()` and the energy moved is returned.
    ///
    /// # Errors
    ///
    /// Returns an alignment error if the series are misaligned.
    // ce:hot
    pub fn schedule_by_cost_with(
        &self,
        demand: &HourlySeries,
        cost: &HourlySeries,
        scratch: &mut ScheduleScratch,
    ) -> Result<f64, TimeSeriesError> {
        demand.check_aligned(cost)?;
        scratch.shifted.clear();
        scratch.shifted.extend_from_slice(demand.values());
        let mut total_moved = 0.0;

        let full_days = demand.len() / HOURS_PER_DAY;
        for day in 0..full_days {
            let base = day * HOURS_PER_DAY;
            total_moved += self.schedule_day(
                &mut scratch.shifted[base..base + HOURS_PER_DAY],
                &cost.values()[base..base + HOURS_PER_DAY],
                None,
                &mut scratch.movable,
                &mut scratch.order,
            );
        }

        Ok(total_moved)
    }

    /// Greedy within one day; returns energy moved. `movable` and `order`
    /// are caller-owned work buffers (cleared and refilled here).
    ///
    /// When a `supply` slice is given, a destination hour additionally
    /// stops absorbing load once its remaining renewable surplus is used
    /// up — moving more would merely relocate the deficit.
    // ce:hot
    fn schedule_day(
        &self,
        load: &mut [f64],
        cost: &[f64],
        supply: Option<&[f64]>,
        movable: &mut Vec<f64>,
        order: &mut Vec<usize>,
    ) -> f64 {
        let n = load.len();
        // Movable budget is FWR of the *original* hourly load.
        movable.clear();
        movable.extend(load.iter().map(|&l| l * self.config.flexible_ratio));

        // Hours ranked by cost: sources from most expensive down,
        // destinations from cheapest up. A hand-rolled insertion sort
        // keeps the allocation-free guarantee (`slice::sort_by` may
        // allocate) while producing the exact permutation of any stable
        // sort, so results match the previous `sort_by` formulation.
        order.clear();
        order.extend(0..n);
        for i in 1..n {
            let mut j = i;
            while j > 0 && cost[order[j]].total_cmp(&cost[order[j - 1]]) == std::cmp::Ordering::Less
            {
                order.swap(j, j - 1);
                j -= 1;
            }
        }

        let mut moved = 0.0;
        let mut dest_idx = 0;
        let mut src_idx = n;
        while dest_idx < src_idx {
            let src = order[src_idx - 1];
            let dst = order[dest_idx];
            // Only profitable to move load to a strictly cheaper hour.
            if cost[dst] >= cost[src] {
                break;
            }
            let mut headroom = (self.config.max_capacity_mw - load[dst]).max(0.0);
            if let Some(s) = supply {
                headroom = headroom.min((s[dst] - load[dst]).max(0.0));
            }
            let amount = movable[src].min(headroom);
            if amount > 1e-12 {
                load[src] -= amount;
                load[dst] += amount;
                movable[src] -= amount;
                moved += amount;
            }
            // Advance whichever side is exhausted.
            if movable[src] <= 1e-12 {
                src_idx -= 1;
            } else {
                dest_idx += 1;
            }
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_timeseries::Timestamp;

    fn start() -> Timestamp {
        Timestamp::start_of_year(2020)
    }

    fn solar_day_supply() -> HourlySeries {
        HourlySeries::from_fn(start(), 24, |h| {
            if (6..18).contains(&(h % 24)) {
                25.0
            } else {
                0.0
            }
        })
    }

    fn deficit_after(demand: &HourlySeries, supply: &HourlySeries) -> f64 {
        demand
            .zip_with(supply, |d, s| (d - s).max(0.0))
            .unwrap()
            .sum()
    }

    #[test]
    fn shifting_reduces_renewable_deficit() {
        let demand = HourlySeries::constant(start(), 24, 10.0);
        let supply = solar_day_supply();
        let sched = GreedyScheduler::new(CasConfig {
            max_capacity_mw: 20.0,
            flexible_ratio: 0.4,
        });
        let result = sched.schedule(&demand, &supply).unwrap();
        let before = deficit_after(&demand, &supply);
        let after = deficit_after(&result.shifted_demand, &supply);
        assert!(after < before, "deficit {after} !< {before}");
        assert!(result.energy_shifted_mwh > 0.0);
    }

    #[test]
    fn daily_energy_is_conserved() {
        let demand = HourlySeries::from_fn(start(), 72, |h| 10.0 + (h % 5) as f64);
        let supply = HourlySeries::from_fn(start(), 72, |h| ((h * 7) % 23) as f64);
        let sched = GreedyScheduler::new(CasConfig {
            max_capacity_mw: 30.0,
            flexible_ratio: 0.5,
        });
        let result = sched.schedule(&demand, &supply).unwrap();
        for day in 0..3 {
            let orig: f64 = demand.values()[day * 24..(day + 1) * 24].iter().sum();
            let new: f64 = result.shifted_demand.values()[day * 24..(day + 1) * 24]
                .iter()
                .sum();
            assert!((orig - new).abs() < 1e-9, "day {day}: {orig} vs {new}");
        }
    }

    #[test]
    fn capacity_cap_is_respected() {
        let demand = HourlySeries::constant(start(), 24, 10.0);
        let supply = solar_day_supply();
        let cap = 12.5;
        let sched = GreedyScheduler::new(CasConfig {
            max_capacity_mw: cap,
            flexible_ratio: 1.0,
        });
        let result = sched.schedule(&demand, &supply).unwrap();
        for (_, v) in result.shifted_demand.iter() {
            assert!(v <= cap + 1e-9, "hour exceeds cap: {v}");
        }
    }

    #[test]
    fn zero_flexibility_changes_nothing() {
        let demand = HourlySeries::from_fn(start(), 48, |h| 5.0 + (h % 3) as f64);
        let supply = HourlySeries::zeros(start(), 48);
        let sched = GreedyScheduler::new(CasConfig {
            max_capacity_mw: 100.0,
            flexible_ratio: 0.0,
        });
        let result = sched.schedule(&demand, &supply).unwrap();
        assert_eq!(result.shifted_demand, demand);
        assert_eq!(result.energy_shifted_mwh, 0.0);
    }

    #[test]
    fn more_flexibility_shifts_at_least_as_much_deficit_away() {
        let demand = HourlySeries::constant(start(), 24, 10.0);
        let supply = solar_day_supply();
        let deficits: Vec<f64> = [0.1, 0.4, 1.0]
            .iter()
            .map(|&fwr| {
                let sched = GreedyScheduler::new(CasConfig {
                    max_capacity_mw: 25.0,
                    flexible_ratio: fwr,
                });
                let r = sched.schedule(&demand, &supply).unwrap();
                deficit_after(&r.shifted_demand, &supply)
            })
            .collect();
        assert!(deficits[0] >= deficits[1]);
        assert!(deficits[1] >= deficits[2]);
    }

    #[test]
    fn no_movement_when_cost_is_flat() {
        let demand = HourlySeries::constant(start(), 24, 10.0);
        let flat_cost = HourlySeries::constant(start(), 24, 3.0);
        let sched = GreedyScheduler::new(CasConfig {
            max_capacity_mw: 100.0,
            flexible_ratio: 1.0,
        });
        let result = sched.schedule_by_cost(&demand, &flat_cost).unwrap();
        assert_eq!(result.energy_shifted_mwh, 0.0);
    }

    #[test]
    fn load_moves_toward_cheap_hours() {
        let demand = HourlySeries::constant(start(), 24, 10.0);
        let cost = HourlySeries::from_fn(start(), 24, |h| if h < 12 { 1.0 } else { 10.0 });
        let sched = GreedyScheduler::new(CasConfig {
            max_capacity_mw: 30.0,
            flexible_ratio: 0.5,
        });
        let result = sched.schedule_by_cost(&demand, &cost).unwrap();
        let cheap: f64 = result.shifted_demand.values()[..12].iter().sum();
        let dear: f64 = result.shifted_demand.values()[12..].iter().sum();
        assert!(cheap > dear);
        // Expensive hours retain their inflexible 50%.
        for &v in &result.shifted_demand.values()[12..] {
            assert!(v >= 5.0 - 1e-9);
        }
    }

    #[test]
    fn partial_trailing_day_is_left_unscheduled() {
        let demand = HourlySeries::constant(start(), 30, 10.0);
        let supply = HourlySeries::zeros(start(), 30);
        let sched = GreedyScheduler::new(CasConfig {
            max_capacity_mw: 100.0,
            flexible_ratio: 1.0,
        });
        let result = sched.schedule(&demand, &supply).unwrap();
        // Hours 24..30 are untouched (not a full day).
        assert_eq!(
            &result.shifted_demand.values()[24..],
            &demand.values()[24..]
        );
    }

    #[test]
    fn schedule_with_matches_schedule_bitwise() {
        let demand = HourlySeries::from_fn(start(), 96, |h| 8.0 + ((h * 11) % 9) as f64);
        let supply = HourlySeries::from_fn(start(), 96, |h| ((h * 5) % 21) as f64);
        let sched = GreedyScheduler::new(CasConfig {
            max_capacity_mw: 18.0,
            flexible_ratio: 0.4,
        });
        let full = sched.schedule(&demand, &supply).unwrap();
        let mut scratch = ScheduleScratch::default();
        let moved = sched.schedule_with(&demand, &supply, &mut scratch).unwrap();
        assert_eq!(scratch.shifted(), full.shifted_demand.values());
        assert_eq!(moved.to_bits(), full.energy_shifted_mwh.to_bits());
    }

    #[test]
    fn schedule_by_cost_with_matches_schedule_by_cost() {
        let demand = HourlySeries::from_fn(start(), 48, |h| 6.0 + (h % 4) as f64);
        let cost = HourlySeries::from_fn(start(), 48, |h| ((h * 17) % 10) as f64);
        let sched = GreedyScheduler::new(CasConfig {
            max_capacity_mw: 40.0,
            flexible_ratio: 0.7,
        });
        let full = sched.schedule_by_cost(&demand, &cost).unwrap();
        let mut scratch = ScheduleScratch::default();
        let moved = sched
            .schedule_by_cost_with(&demand, &cost, &mut scratch)
            .unwrap();
        assert_eq!(scratch.shifted(), full.shifted_demand.values());
        assert_eq!(moved.to_bits(), full.energy_shifted_mwh.to_bits());
    }

    #[test]
    fn scratch_is_reusable_across_runs_of_different_lengths() {
        let sched = GreedyScheduler::new(CasConfig {
            max_capacity_mw: 25.0,
            flexible_ratio: 0.5,
        });
        let mut scratch = ScheduleScratch::default();
        let long_demand = HourlySeries::constant(start(), 72, 10.0);
        let long_supply = HourlySeries::from_fn(start(), 72, |h| ((h * 3) % 20) as f64);
        sched
            .schedule_with(&long_demand, &long_supply, &mut scratch)
            .unwrap();
        let short_demand = HourlySeries::constant(start(), 24, 10.0);
        let short_supply = solar_day_supply();
        let moved = sched
            .schedule_with(&short_demand, &short_supply, &mut scratch)
            .unwrap();
        let fresh = sched.schedule(&short_demand, &short_supply).unwrap();
        assert_eq!(scratch.shifted(), fresh.shifted_demand.values());
        assert_eq!(moved, fresh.energy_shifted_mwh);
        assert_eq!(scratch.shifted().len(), 24);
    }

    #[test]
    #[should_panic(expected = "flexible ratio")]
    fn rejects_bad_ratio() {
        GreedyScheduler::new(CasConfig {
            max_capacity_mw: 10.0,
            flexible_ratio: 1.5,
        });
    }

    #[test]
    fn misaligned_series_is_an_error() {
        let demand = HourlySeries::zeros(start(), 24);
        let supply = HourlySeries::zeros(start(), 25);
        let sched = GreedyScheduler::new(CasConfig {
            max_capacity_mw: 10.0,
            flexible_ratio: 0.4,
        });
        assert!(sched.schedule(&demand, &supply).is_err());
    }
}
