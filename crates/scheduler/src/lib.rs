//! Carbon-aware scheduling (CAS): shifting delay-tolerant computation from
//! carbon-intensive hours to carbon-free hours (paper §4.3 and §5.2).
//!
//! Three schedulers are provided:
//!
//! - [`GreedyScheduler`] — the paper's algorithm: per day, flexible load is
//!   moved from the hours with the highest carbon cost to the hours with
//!   the lowest, until the flexible budget or the capacity cap
//!   (`P_DC_MAX`) is exhausted;
//! - [`lp_schedule`] — an LP-optimal per-day placement
//!   (using the `ce-lp` simplex solver) that lower-bounds what any
//!   scheduler could achieve, used as a baseline for the greedy algorithm;
//! - [`combined`] — the paper's battery + CAS heuristic: on deficit,
//!   battery energy is used first and workloads shift only if the battery
//!   is insufficient; on surplus, deferred work runs first and the battery
//!   charges with the remainder.
//!
//! # Example
//!
//! ```
//! use ce_scheduler::{CasConfig, GreedyScheduler};
//! use ce_timeseries::{HourlySeries, Timestamp};
//!
//! let start = Timestamp::start_of_year(2020);
//! let demand = HourlySeries::constant(start, 24, 10.0);
//! // Renewables only in hours 6..18 (a solar day).
//! let supply = HourlySeries::from_fn(start, 24, |h| if (6..18).contains(&(h % 24)) { 20.0 } else { 0.0 });
//! let scheduler = GreedyScheduler::new(CasConfig { max_capacity_mw: 17.6, flexible_ratio: 0.4 });
//! let result = scheduler.schedule(&demand, &supply).unwrap();
//! // Load moved into the solar hours; total energy conserved.
//! assert!((result.shifted_demand.sum() - demand.sum()).abs() < 1e-9);
//! assert!(result.energy_shifted_mwh > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacity;
pub mod combined;
pub mod greedy;
pub mod lp;
pub mod online;
pub mod queue;
pub mod spatial;
pub mod tiered;

pub use capacity::{additional_capacity_fraction, required_capacity_for_full_coverage};
pub use combined::{
    combined_dispatch, combined_dispatch_stats, CombinedConfig, CombinedResult, CombinedScratch,
    CombinedStats,
};
pub use greedy::{CasConfig, CostOrder, GreedyScheduler, ScheduleResult, ScheduleScratch};
pub use lp::lp_schedule;
pub use online::{online_schedule, OnlineResult};
pub use queue::{simulate_queue, QueueStats};
pub use spatial::{migrate_load, MigrationConfig, MigrationResult, SpatialSite};
pub use tiered::{TierSpec, TieredScheduler};
