//! LP-optimal day scheduling: the baseline that bounds the greedy
//! algorithm from below.
//!
//! Per day, the placement of flexible load that minimizes the renewable
//! deficit is a small linear program:
//!
//! ```text
//! minimize    Σ_h u_h                          (total unmet energy)
//! subject to  Σ_h f_h = F                      (flexible energy conserved)
//!             f_h + base_h ≤ P_DC_MAX          (capacity cap)
//!             u_h ≥ base_h + f_h − supply_h    (deficit definition)
//!             f_h, u_h ≥ 0
//! ```
//!
//! with `base_h` the inflexible load and `F` the day's flexible energy.

use crate::greedy::CasConfig;
use ce_lp::{LinearProgram, LpError, Relation};
use ce_timeseries::time::HOURS_PER_DAY;
use ce_timeseries::{HourlySeries, TimeSeriesError};

/// Errors from LP-based scheduling.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LpScheduleError {
    /// The underlying series were misaligned.
    Series(TimeSeriesError),
    /// The per-day LP failed (should not happen for well-formed inputs).
    Solver(LpError),
}

impl std::fmt::Display for LpScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Series(e) => write!(f, "series error: {e}"),
            Self::Solver(e) => write!(f, "lp solver error: {e}"),
        }
    }
}

impl std::error::Error for LpScheduleError {}

impl From<TimeSeriesError> for LpScheduleError {
    fn from(e: TimeSeriesError) -> Self {
        Self::Series(e)
    }
}

impl From<LpError> for LpScheduleError {
    fn from(e: LpError) -> Self {
        Self::Solver(e)
    }
}

/// Optimally re-places flexible load within each full day to minimize the
/// renewable deficit, subject to the capacity cap. Returns the scheduled
/// demand series (partial trailing days are left untouched).
///
/// # Errors
///
/// Returns [`LpScheduleError::Series`] for misaligned inputs or
/// [`LpScheduleError::Solver`] if a day's LP fails.
///
/// # Panics
///
/// Panics if `config.flexible_ratio` is outside `[0, 1]`.
pub fn lp_schedule(
    demand: &HourlySeries,
    supply: &HourlySeries,
    config: CasConfig,
) -> Result<HourlySeries, LpScheduleError> {
    assert!(
        (0.0..=1.0).contains(&config.flexible_ratio),
        "flexible ratio must be in [0, 1]"
    );
    demand.check_aligned(supply)?;
    let mut out = demand.values().to_vec();
    let full_days = demand.len() / HOURS_PER_DAY;
    for day in 0..full_days {
        let base_idx = day * HOURS_PER_DAY;
        let d = &demand.values()[base_idx..base_idx + HOURS_PER_DAY];
        let s = &supply.values()[base_idx..base_idx + HOURS_PER_DAY];
        let scheduled = schedule_one_day(d, s, config)?;
        out[base_idx..base_idx + HOURS_PER_DAY].copy_from_slice(&scheduled);
    }
    Ok(HourlySeries::from_values(demand.start(), out))
}

fn schedule_one_day(
    demand: &[f64],
    supply: &[f64],
    config: CasConfig,
) -> Result<Vec<f64>, LpScheduleError> {
    let n = demand.len();
    let base: Vec<f64> = demand
        .iter()
        .map(|&d| d * (1.0 - config.flexible_ratio))
        .collect();
    let flexible_total: f64 = demand.iter().map(|&d| d * config.flexible_ratio).sum();
    if flexible_total <= 1e-12 {
        return Ok(demand.to_vec());
    }

    // Variables: f_0..f_{n-1}, u_0..u_{n-1}. Minimize Σ u_h.
    let mut objective = vec![0.0; 2 * n];
    for u in &mut objective[n..] {
        *u = 1.0;
    }
    let mut lp = LinearProgram::minimize(objective);

    // Σ f_h = flexible_total.
    let mut conserve = vec![0.0; 2 * n];
    for f in conserve[..n].iter_mut() {
        *f = 1.0;
    }
    lp.add_constraint(conserve, Relation::Eq, flexible_total);

    for h in 0..n {
        // f_h ≤ cap − base_h (capacity).
        let mut cap_row = vec![0.0; 2 * n];
        cap_row[h] = 1.0;
        lp.add_constraint(
            cap_row,
            Relation::Le,
            (config.max_capacity_mw - base[h]).max(0.0),
        );
        // u_h − f_h ≥ base_h − supply_h  ⇔  u_h ≥ base_h + f_h − supply_h.
        let mut deficit_row = vec![0.0; 2 * n];
        deficit_row[n + h] = 1.0;
        deficit_row[h] = -1.0;
        lp.add_constraint(deficit_row, Relation::Ge, base[h] - supply[h]);
    }

    let solution = lp.solve()?;
    Ok((0..n).map(|h| base[h] + solution.value(h)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::GreedyScheduler;
    use ce_timeseries::Timestamp;

    fn start() -> Timestamp {
        Timestamp::start_of_year(2020)
    }

    fn deficit(demand: &HourlySeries, supply: &HourlySeries) -> f64 {
        demand
            .zip_with(supply, |d, s| (d - s).max(0.0))
            .unwrap()
            .sum()
    }

    fn solar_supply(len: usize) -> HourlySeries {
        HourlySeries::from_fn(start(), len, |h| {
            if (7..17).contains(&(h % 24)) {
                30.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn lp_conserves_energy_and_respects_cap() {
        let demand = HourlySeries::constant(start(), 24, 10.0);
        let supply = solar_supply(24);
        let config = CasConfig {
            max_capacity_mw: 22.0,
            flexible_ratio: 0.6,
        };
        let scheduled = lp_schedule(&demand, &supply, config).unwrap();
        assert!((scheduled.sum() - demand.sum()).abs() < 1e-6);
        for (_, v) in scheduled.iter() {
            assert!(v <= 22.0 + 1e-6);
        }
    }

    #[test]
    fn lp_is_at_least_as_good_as_greedy() {
        for (cap, fwr) in [(15.0, 0.2), (20.0, 0.4), (30.0, 1.0), (12.0, 0.8)] {
            let demand = HourlySeries::from_fn(start(), 48, |h| 8.0 + ((h * 3) % 5) as f64);
            let supply = solar_supply(48);
            let config = CasConfig {
                max_capacity_mw: cap,
                flexible_ratio: fwr,
            };
            let lp = lp_schedule(&demand, &supply, config).unwrap();
            let greedy = GreedyScheduler::new(config)
                .schedule(&demand, &supply)
                .unwrap()
                .shifted_demand;
            assert!(
                deficit(&lp, &supply) <= deficit(&greedy, &supply) + 1e-6,
                "cap {cap} fwr {fwr}: lp {} > greedy {}",
                deficit(&lp, &supply),
                deficit(&greedy, &supply)
            );
        }
    }

    #[test]
    fn greedy_is_near_optimal_on_paper_like_inputs() {
        // The paper uses the greedy algorithm; confirm it is within a few
        // percent of the LP optimum on a realistic solar-day shape.
        let demand = HourlySeries::constant(start(), 24, 10.0);
        let supply = solar_supply(24);
        let config = CasConfig {
            max_capacity_mw: 25.0,
            flexible_ratio: 0.4,
        };
        let lp = lp_schedule(&demand, &supply, config).unwrap();
        let greedy = GreedyScheduler::new(config)
            .schedule(&demand, &supply)
            .unwrap()
            .shifted_demand;
        let lp_def = deficit(&lp, &supply);
        let greedy_def = deficit(&greedy, &supply);
        assert!(
            greedy_def <= lp_def * 1.05 + 1e-6,
            "greedy {greedy_def} vs lp {lp_def}"
        );
    }

    #[test]
    fn zero_flexibility_is_identity() {
        let demand = HourlySeries::from_fn(start(), 24, |h| h as f64);
        let supply = HourlySeries::zeros(start(), 24);
        let config = CasConfig {
            max_capacity_mw: 100.0,
            flexible_ratio: 0.0,
        };
        assert_eq!(lp_schedule(&demand, &supply, config).unwrap(), demand);
    }

    #[test]
    fn misalignment_is_an_error() {
        let demand = HourlySeries::zeros(start(), 24);
        let supply = HourlySeries::zeros(start(), 23);
        let config = CasConfig {
            max_capacity_mw: 1.0,
            flexible_ratio: 0.4,
        };
        assert!(matches!(
            lp_schedule(&demand, &supply, config),
            Err(LpScheduleError::Series(_))
        ));
    }
}
