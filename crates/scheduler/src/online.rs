//! Online (forecast-driven) carbon-aware scheduling.
//!
//! The paper's analyses are offline: the scheduler sees the year's actual
//! renewable supply. A deployed scheduler only sees *forecasts*. This
//! module runs the greedy scheduler day by day against a seasonal-naive
//! forecast of tomorrow's supply (built from the trailing history), then
//! scores the resulting schedule against the *actual* supply — so the
//! cost of imperfect information is measurable.

use crate::greedy::{CasConfig, GreedyScheduler};
use ce_timeseries::forecast::seasonal_naive;
use ce_timeseries::time::HOURS_PER_DAY;
use ce_timeseries::{HourlySeries, TimeSeriesError};

/// Result of an online scheduling run.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineResult {
    /// The schedule produced using only forecast information.
    pub shifted_demand: HourlySeries,
    /// Total energy moved, MWh.
    pub energy_shifted_mwh: f64,
    /// Renewable deficit of the online schedule against *actual* supply.
    pub deficit_mwh: f64,
    /// Renewable deficit an oracle (actual-supply) scheduler achieves.
    pub oracle_deficit_mwh: f64,
}

impl OnlineResult {
    /// How much worse the forecast-driven schedule is than the oracle, as
    /// a fraction of the oracle deficit (0 = as good as the oracle).
    pub fn regret(&self) -> f64 {
        if self.oracle_deficit_mwh > 0.0 {
            (self.deficit_mwh - self.oracle_deficit_mwh) / self.oracle_deficit_mwh
        } else if self.deficit_mwh > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    }
}

/// Runs the greedy scheduler one day at a time: day `d`'s flexible load is
/// placed using a seasonal-naive forecast of day `d`'s supply built from
/// all supply observed before it. The first day (no history) is left
/// unscheduled. Partial trailing days are left unscheduled.
///
/// # Errors
///
/// Returns an alignment error if the series are misaligned.
///
/// # Panics
///
/// Panics if `config.flexible_ratio` is outside `[0, 1]` (propagated from
/// [`GreedyScheduler::new`]).
pub fn online_schedule(
    demand: &HourlySeries,
    actual_supply: &HourlySeries,
    config: CasConfig,
) -> Result<OnlineResult, TimeSeriesError> {
    demand.check_aligned(actual_supply)?;
    let scheduler = GreedyScheduler::new(config);
    let full_days = demand.len() / HOURS_PER_DAY;
    let mut shifted = demand.values().to_vec();
    let mut moved = 0.0;

    for day in 1..full_days {
        let base = day * HOURS_PER_DAY;
        let history = actual_supply.window(0, base).expect("prefix fits");
        let forecast = seasonal_naive(&history, HOURS_PER_DAY).expect("history >= 1 day");
        let day_demand = demand.window(base, HOURS_PER_DAY).expect("day fits");
        let result = scheduler.schedule(&day_demand, &forecast)?;
        shifted[base..base + HOURS_PER_DAY].copy_from_slice(result.shifted_demand.values());
        moved += result.energy_shifted_mwh;
    }

    let shifted_demand = HourlySeries::from_values(demand.start(), shifted);
    let deficit = |d: &HourlySeries| -> f64 {
        d.zip_with(actual_supply, |p, s| (p - s).max(0.0))
            .expect("aligned")
            .sum()
    };
    let oracle = scheduler.schedule(demand, actual_supply)?;

    Ok(OnlineResult {
        deficit_mwh: deficit(&shifted_demand),
        oracle_deficit_mwh: deficit(&oracle.shifted_demand),
        shifted_demand,
        energy_shifted_mwh: moved,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_timeseries::Timestamp;

    fn start() -> Timestamp {
        Timestamp::start_of_year(2020)
    }

    fn config() -> CasConfig {
        CasConfig {
            max_capacity_mw: 25.0,
            flexible_ratio: 0.4,
        }
    }

    fn solar_like(days: usize, amplitude: impl Fn(usize) -> f64) -> HourlySeries {
        HourlySeries::from_fn(start(), days * 24, move |h| {
            if (7..17).contains(&(h % 24)) {
                amplitude(h / 24)
            } else {
                0.0
            }
        })
    }

    #[test]
    fn online_matches_oracle_on_perfectly_periodic_supply() {
        let demand = HourlySeries::constant(start(), 5 * 24, 10.0);
        let supply = solar_like(5, |_| 30.0);
        let result = online_schedule(&demand, &supply, config()).unwrap();
        // The seasonal-naive forecast is exact here, so day 2+ schedules
        // are identical to the oracle's; only day 0 is unscheduled.
        let unscheduled_day0: f64 = (0..24).map(|h| (demand[h] - supply[h]).max(0.0)).sum();
        let oracle_day0: f64 = result.oracle_deficit_mwh / 5.0; // oracle deficit is uniform across days
        assert!(
            result.deficit_mwh
                <= result.oracle_deficit_mwh + (unscheduled_day0 - oracle_day0) + 1e-6
        );
    }

    #[test]
    fn online_conserves_daily_energy() {
        let demand = HourlySeries::from_fn(start(), 4 * 24, |h| 8.0 + (h % 5) as f64);
        let supply = solar_like(4, |d| 20.0 + 5.0 * d as f64);
        let result = online_schedule(&demand, &supply, config()).unwrap();
        for day in 0..4 {
            let orig: f64 = demand.values()[day * 24..(day + 1) * 24].iter().sum();
            let new: f64 = result.shifted_demand.values()[day * 24..(day + 1) * 24]
                .iter()
                .sum();
            assert!((orig - new).abs() < 1e-9, "day {day}");
        }
    }

    #[test]
    fn online_never_beats_the_oracle() {
        // Vary supply day to day so the forecast is imperfect.
        let demand = HourlySeries::constant(start(), 6 * 24, 10.0);
        let supply = solar_like(6, |d| if d % 2 == 0 { 35.0 } else { 12.0 });
        let result = online_schedule(&demand, &supply, config()).unwrap();
        assert!(result.deficit_mwh >= result.oracle_deficit_mwh - 1e-9);
        assert!(result.regret() >= 0.0);
    }

    #[test]
    fn online_still_improves_over_no_scheduling() {
        let demand = HourlySeries::constant(start(), 6 * 24, 10.0);
        let supply = solar_like(6, |d| 25.0 + (d % 3) as f64 * 4.0);
        let result = online_schedule(&demand, &supply, config()).unwrap();
        let unscheduled: f64 = demand
            .zip_with(&supply, |d, s| (d - s).max(0.0))
            .unwrap()
            .sum();
        assert!(result.deficit_mwh < unscheduled);
        assert!(result.energy_shifted_mwh > 0.0);
    }

    #[test]
    fn misaligned_inputs_error() {
        let demand = HourlySeries::zeros(start(), 48);
        let supply = HourlySeries::zeros(start(), 49);
        assert!(online_schedule(&demand, &supply, config()).is_err());
    }

    #[test]
    fn regret_handles_zero_oracle_deficit() {
        let demand = HourlySeries::constant(start(), 48, 1.0);
        let supply = HourlySeries::constant(start(), 48, 5.0);
        let result = online_schedule(&demand, &supply, config()).unwrap();
        assert_eq!(result.regret(), 0.0);
    }
}
