//! Job-queue simulation: carbon-aware scheduling at job granularity.
//!
//! The aggregate schedulers treat flexible load as a fluid; this
//! simulator keeps individual jobs (from
//! [`ce_datacenter::jobs`]) so SLO outcomes are observable: a
//! carbon-aware queue delays each deferrable job until renewable supply
//! is available — or its SLO deadline arrives, whichever is first — and
//! reports completion latency and how much of the fleet's flexible work
//! actually ran on renewable energy.

use ce_datacenter::jobs::Job;
use ce_timeseries::{HourlySeries, TimeSeriesError};
use serde::{Deserialize, Serialize};

/// Statistics from a queue simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[must_use]
pub struct QueueStats {
    /// Jobs simulated.
    pub jobs: usize,
    /// Jobs that started at their arrival hour (no deferral needed).
    pub started_immediately: usize,
    /// Jobs forced to start at their deadline without renewable power.
    pub forced_at_deadline: usize,
    /// Mean start delay across all jobs, hours.
    pub mean_delay_hours: f64,
    /// Largest start delay observed, hours.
    pub max_delay_hours: u32,
    /// Fraction of job energy served during renewable-surplus hours.
    pub green_energy_fraction: f64,
}

/// Simulates a carbon-aware job queue for one year.
///
/// `surplus` is the hourly renewable power left after serving inflexible
/// load (MW). Jobs run whole-hours at their nominal power. A job starts
/// at the earliest hour ≥ its arrival with surplus available for its
/// first hour, or unconditionally at its SLO deadline minus duration so
/// the deadline is still met.
///
/// # Errors
///
/// Returns [`TimeSeriesError::Empty`] if `surplus` is empty.
pub fn simulate_queue(
    jobs: &[Job],
    surplus: &HourlySeries,
    year: i32,
) -> Result<QueueStats, TimeSeriesError> {
    if surplus.is_empty() {
        return Err(TimeSeriesError::Empty);
    }
    let horizon = u32::try_from(surplus.len()).unwrap_or(u32::MAX);
    let mut available = surplus.values().to_vec();

    // Process jobs in arrival order: earlier arrivals claim surplus first.
    let mut ordered: Vec<&Job> = jobs.iter().collect();
    ordered.sort_by_key(|j| j.arrival_hour);

    let mut started_immediately = 0usize;
    let mut forced = 0usize;
    let mut total_delay = 0.0f64;
    let mut max_delay = 0u32;
    let mut green_energy = 0.0f64;
    let mut total_energy = 0.0f64;

    for job in &ordered {
        let latest_start = job
            .deadline_hour(year)
            .saturating_sub(job.duration_hours)
            .min(horizon.saturating_sub(1));
        let mut start = None;
        for h in job.arrival_hour..=latest_start {
            let slot = usize::try_from(h).unwrap_or(usize::MAX);
            if slot < available.len() && available[slot] >= job.power_mw {
                start = Some(h);
                break;
            }
        }
        let (start, was_forced) = match start {
            Some(h) => (h, false),
            None => (latest_start.max(job.arrival_hour), true),
        };
        if start == job.arrival_hour {
            started_immediately += 1;
        }
        if was_forced {
            forced += 1;
        }
        let delay = start - job.arrival_hour;
        total_delay += delay as f64;
        max_delay = max_delay.max(delay);

        for h in start..(start + job.duration_hours).min(horizon) {
            let Ok(idx) = usize::try_from(h) else {
                break; // unrepresentable hour index: past any real horizon
            };
            let green = available[idx].min(job.power_mw).max(0.0);
            green_energy += green;
            available[idx] -= job.power_mw; // may go negative = grid draw
            total_energy += job.power_mw;
        }
    }

    Ok(QueueStats {
        jobs: ordered.len(),
        started_immediately,
        forced_at_deadline: forced,
        mean_delay_hours: if ordered.is_empty() {
            0.0
        } else {
            total_delay / ordered.len() as f64
        },
        max_delay_hours: max_delay,
        green_energy_fraction: if total_energy > 0.0 {
            green_energy / total_energy
        } else {
            1.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_datacenter::jobs::JobTraceGenerator;
    use ce_datacenter::SloTier;
    use ce_timeseries::Timestamp;

    fn start() -> Timestamp {
        Timestamp::start_of_year(2020)
    }

    fn job(arrival: u32, duration: u32, power: f64, tier: SloTier) -> Job {
        Job {
            arrival_hour: arrival,
            duration_hours: duration,
            power_mw: power,
            tier,
        }
    }

    #[test]
    fn jobs_run_immediately_when_surplus_exists() {
        let surplus = HourlySeries::constant(start(), 48, 10.0);
        let jobs = vec![
            job(0, 2, 1.0, SloTier::Tier4),
            job(5, 1, 2.0, SloTier::Tier1),
        ];
        let stats = simulate_queue(&jobs, &surplus, 2020).unwrap();
        assert_eq!(stats.started_immediately, 2);
        assert_eq!(stats.forced_at_deadline, 0);
        assert_eq!(stats.mean_delay_hours, 0.0);
        assert!((stats.green_energy_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jobs_wait_for_surplus_within_their_window() {
        // No surplus until hour 6; a Tier-4 (daily) job arriving at 0 waits.
        let surplus = HourlySeries::from_fn(start(), 48, |h| if h >= 6 { 10.0 } else { 0.0 });
        let jobs = vec![job(0, 2, 1.0, SloTier::Tier4)];
        let stats = simulate_queue(&jobs, &surplus, 2020).unwrap();
        assert_eq!(stats.started_immediately, 0);
        assert_eq!(stats.forced_at_deadline, 0);
        assert_eq!(stats.mean_delay_hours, 6.0);
        assert_eq!(stats.max_delay_hours, 6);
    }

    #[test]
    fn tight_slos_force_grid_execution() {
        // Tier 1 (±1h) job with no surplus until hour 10: must run by its
        // deadline on grid power.
        let surplus = HourlySeries::from_fn(start(), 48, |h| if h >= 10 { 10.0 } else { 0.0 });
        let jobs = vec![job(0, 1, 1.0, SloTier::Tier1)];
        let stats = simulate_queue(&jobs, &surplus, 2020).unwrap();
        assert_eq!(stats.forced_at_deadline, 1);
        assert_eq!(stats.green_energy_fraction, 0.0);
        // Deadline = arrival + duration + 1 = 2; latest start = 1.
        assert_eq!(stats.max_delay_hours, 1);
    }

    #[test]
    fn surplus_is_consumed_by_earlier_jobs() {
        // 1 MW of surplus at hour 0 only; two 1 MW jobs arrive at 0.
        let surplus = HourlySeries::from_values(start(), vec![1.0, 0.0, 0.0, 1.0]);
        let jobs = vec![
            job(0, 1, 1.0, SloTier::Tier3),
            job(0, 1, 1.0, SloTier::Tier3),
        ];
        let stats = simulate_queue(&jobs, &surplus, 2020).unwrap();
        // First job takes hour 0; second finds surplus at hour 3 (within
        // its ±4h window).
        assert_eq!(stats.started_immediately, 1);
        assert_eq!(stats.forced_at_deadline, 0);
        assert!((stats.green_energy_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_year_population_mostly_runs_green_on_a_sunny_grid() {
        let generator = JobTraceGenerator {
            arrivals_per_hour: 2.0,
            mean_power_mw: 0.02,
            mean_duration_hours: 2.0,
        };
        let jobs = generator.generate(2020, 7);
        let surplus = HourlySeries::from_fn(start(), 8784, |h| {
            if (7..17).contains(&(h % 24)) {
                5.0
            } else {
                0.0
            }
        });
        let stats = simulate_queue(&jobs, &surplus, 2020).unwrap();
        assert_eq!(stats.jobs, jobs.len());
        // Most flexible energy lands in the sunny window.
        assert!(
            stats.green_energy_fraction > 0.5,
            "green fraction {:.2}",
            stats.green_energy_fraction
        );
        // Tier-1 jobs arriving at night get forced; some forcing expected.
        assert!(stats.forced_at_deadline > 0);
        assert!(stats.mean_delay_hours > 0.0);
    }

    #[test]
    fn empty_surplus_is_an_error() {
        let surplus = HourlySeries::zeros(start(), 0);
        assert!(simulate_queue(&[], &surplus, 2020).is_err());
    }

    #[test]
    fn empty_job_list_is_trivially_green() {
        let surplus = HourlySeries::constant(start(), 24, 1.0);
        let stats = simulate_queue(&[], &surplus, 2020).unwrap();
        assert_eq!(stats.jobs, 0);
        assert_eq!(stats.green_energy_fraction, 1.0);
    }
}
