//! Spatial load migration: shifting flexible computation *between*
//! datacenter regions rather than across time.
//!
//! The paper's discussion cites load migration between datacenters
//! (Zheng, Chien & Suh, Joule 2020) as a complementary lever: when
//! Oregon's wind is becalmed, Texas may be sunny. This module implements
//! a greedy hourly balancer across a fleet: each hour, flexible load
//! moves from sites in renewable deficit to sites with surplus renewable
//! supply and spare capacity. It composes with temporal scheduling —
//! migrate first, shift in time second.

use ce_timeseries::{HourlySeries, TimeSeriesError};
use serde::{Deserialize, Serialize};

/// One site's view for the spatial balancer.
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialSite {
    /// Site label (for reports).
    pub name: String,
    /// Hourly demand, MW.
    pub demand: HourlySeries,
    /// Hourly renewable supply, MW.
    pub supply: HourlySeries,
    /// Hard cap on hourly power after receiving migrated load, MW.
    pub max_capacity_mw: f64,
}

/// Configuration for spatial migration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationConfig {
    /// Fraction of each site's hourly load that may run elsewhere.
    pub migratable_fraction: f64,
    /// Energy overhead of moving work (network, state transfer) as a
    /// fraction of the moved load; 0.02 = 2% extra energy at the receiver.
    pub migration_overhead: f64,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        Self {
            migratable_fraction: 0.4,
            migration_overhead: 0.02,
        }
    }
}

/// Result of a fleet-wide migration run.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationResult {
    /// Post-migration demand per site (same order as the input).
    pub balanced_demand: Vec<HourlySeries>,
    /// Total energy migrated, MWh.
    pub migrated_mwh: f64,
    /// Fleet-wide renewable deficit before migration, MWh.
    pub deficit_before_mwh: f64,
    /// Fleet-wide renewable deficit after migration, MWh.
    pub deficit_after_mwh: f64,
}

/// Greedily migrates flexible load between sites, hour by hour.
///
/// # Errors
///
/// Returns an alignment error if any site's series are misaligned with
/// the first site's.
///
/// # Panics
///
/// Panics if `config.migratable_fraction` is outside `[0, 1]`,
/// `config.migration_overhead` is negative, or `sites` is empty.
#[allow(clippy::needless_range_loop)] // per-hour mutation across several parallel site arrays
pub fn migrate_load(
    sites: &[SpatialSite],
    config: MigrationConfig,
) -> Result<MigrationResult, TimeSeriesError> {
    assert!(!sites.is_empty(), "at least one site required");
    assert!(
        (0.0..=1.0).contains(&config.migratable_fraction),
        "migratable fraction must be in [0, 1]"
    );
    assert!(
        config.migration_overhead >= 0.0,
        "migration overhead must be non-negative"
    );
    let reference = &sites[0].demand;
    for site in sites {
        reference.check_aligned(&site.demand)?;
        reference.check_aligned(&site.supply)?;
    }

    let hours = reference.len();
    let mut balanced: Vec<Vec<f64>> = sites.iter().map(|s| s.demand.values().to_vec()).collect();
    let mut migrated = 0.0;

    for h in 0..hours {
        // Surplus pool: per-site spare renewable power, capped by capacity.
        loop {
            // Worst deficit site this hour.
            let donor = (0..sites.len())
                .filter(|&i| balanced[i][h] > sites[i].supply[h] + 1e-9)
                .max_by(|&a, &b| {
                    let da = balanced[a][h] - sites[a].supply[h];
                    let db = balanced[b][h] - sites[b].supply[h];
                    da.partial_cmp(&db).expect("no NaN")
                });
            let Some(donor) = donor else { break };
            // Best receiver: most spare surplus and capacity.
            let receiver = (0..sites.len())
                .filter(|&i| i != donor)
                .map(|i| {
                    let spare = (sites[i].supply[h] - balanced[i][h])
                        .min(sites[i].max_capacity_mw - balanced[i][h]);
                    (i, spare)
                })
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"));
            let Some((receiver, spare)) = receiver else {
                break;
            };
            if spare <= 1e-9 {
                break;
            }
            // Migratable budget is a fraction of the site's original load.
            let already_moved = sites[donor].demand[h] - balanced[donor][h];
            let budget =
                (sites[donor].demand[h] * config.migratable_fraction - already_moved).max(0.0);
            let deficit = balanced[donor][h] - sites[donor].supply[h];
            let amount = budget
                .min(deficit)
                .min(spare / (1.0 + config.migration_overhead));
            if amount <= 1e-9 {
                break;
            }
            balanced[donor][h] -= amount;
            balanced[receiver][h] += amount * (1.0 + config.migration_overhead);
            migrated += amount;
        }
    }

    let deficit = |demands: &[Vec<f64>]| -> f64 {
        demands
            .iter()
            .zip(sites)
            .map(|(d, site)| {
                d.iter()
                    .enumerate()
                    .map(|(h, &v)| (v - site.supply[h]).max(0.0))
                    .sum::<f64>()
            })
            .sum()
    };
    let before: Vec<Vec<f64>> = sites.iter().map(|s| s.demand.values().to_vec()).collect();

    Ok(MigrationResult {
        deficit_before_mwh: deficit(&before),
        deficit_after_mwh: deficit(&balanced),
        migrated_mwh: migrated,
        balanced_demand: balanced
            .into_iter()
            .map(|values| HourlySeries::from_values(reference.start(), values))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_timeseries::Timestamp;

    fn start() -> Timestamp {
        Timestamp::start_of_year(2020)
    }

    fn site(name: &str, demand: Vec<f64>, supply: Vec<f64>, cap: f64) -> SpatialSite {
        SpatialSite {
            name: name.into(),
            demand: HourlySeries::from_values(start(), demand),
            supply: HourlySeries::from_values(start(), supply),
            max_capacity_mw: cap,
        }
    }

    #[test]
    fn load_flows_from_deficit_to_surplus() {
        let sites = vec![
            site("calm", vec![10.0], vec![0.0], 20.0),
            site("windy", vec![10.0], vec![30.0], 20.0),
        ];
        let result = migrate_load(&sites, MigrationConfig::default()).unwrap();
        // 40% of 10 MW moves over (with 2% overhead at the receiver).
        assert!((result.migrated_mwh - 4.0).abs() < 1e-9);
        assert!((result.balanced_demand[0][0] - 6.0).abs() < 1e-9);
        assert!((result.balanced_demand[1][0] - (10.0 + 4.0 * 1.02)).abs() < 1e-9);
        assert!(result.deficit_after_mwh < result.deficit_before_mwh);
    }

    #[test]
    fn receiver_capacity_limits_migration() {
        let sites = vec![
            site("calm", vec![10.0], vec![0.0], 20.0),
            site("windy", vec![10.0], vec![30.0], 11.0),
        ];
        let result = migrate_load(&sites, MigrationConfig::default()).unwrap();
        assert!(result.balanced_demand[1][0] <= 11.0 + 1e-9);
    }

    #[test]
    fn receiver_surplus_limits_migration() {
        // Receiver has only 2 MW of spare renewables — taking more would
        // just move the deficit around.
        let sites = vec![
            site("calm", vec![10.0], vec![0.0], 100.0),
            site("breezy", vec![10.0], vec![12.0], 100.0),
        ];
        let result = migrate_load(&sites, MigrationConfig::default()).unwrap();
        assert!(result.balanced_demand[1][0] <= 12.0 + 1e-9);
    }

    #[test]
    fn no_migration_when_everyone_is_covered() {
        let sites = vec![
            site("a", vec![5.0, 5.0], vec![10.0, 10.0], 20.0),
            site("b", vec![5.0, 5.0], vec![10.0, 10.0], 20.0),
        ];
        let result = migrate_load(&sites, MigrationConfig::default()).unwrap();
        assert_eq!(result.migrated_mwh, 0.0);
        assert_eq!(result.deficit_after_mwh, 0.0);
    }

    #[test]
    fn total_work_is_conserved_modulo_overhead() {
        let sites = vec![
            site("calm", vec![10.0, 0.0], vec![0.0, 0.0], 50.0),
            site("windy", vec![10.0, 10.0], vec![40.0, 0.0], 50.0),
        ];
        let config = MigrationConfig {
            migratable_fraction: 1.0,
            migration_overhead: 0.1,
        };
        let result = migrate_load(&sites, config).unwrap();
        let before: f64 = sites.iter().map(|s| s.demand.sum()).sum();
        let after: f64 = result.balanced_demand.iter().map(|d| d.sum()).sum();
        assert!((after - (before + result.migrated_mwh * 0.1)).abs() < 1e-9);
    }

    #[test]
    fn zero_migratable_fraction_is_identity() {
        let sites = vec![
            site("a", vec![10.0], vec![0.0], 50.0),
            site("b", vec![10.0], vec![40.0], 50.0),
        ];
        let config = MigrationConfig {
            migratable_fraction: 0.0,
            migration_overhead: 0.02,
        };
        let result = migrate_load(&sites, config).unwrap();
        assert_eq!(result.migrated_mwh, 0.0);
        assert_eq!(result.balanced_demand[0], sites[0].demand);
    }

    #[test]
    fn complementary_regions_cover_each_other() {
        // Site A sunny at noon, site B windy at night: migration lets both
        // ride whichever resource is live.
        let demand = vec![10.0; 24];
        let solar: Vec<f64> = (0..24)
            .map(|h| if (8..16).contains(&h) { 50.0 } else { 0.0 })
            .collect();
        let wind: Vec<f64> = (0..24)
            .map(|h| if (8..16).contains(&h) { 0.0 } else { 50.0 })
            .collect();
        let sites = vec![
            site("sunny", demand.clone(), solar, 40.0),
            site("windy", demand, wind, 40.0),
        ];
        let config = MigrationConfig {
            migratable_fraction: 1.0,
            migration_overhead: 0.0,
        };
        let result = migrate_load(&sites, config).unwrap();
        assert_eq!(result.deficit_after_mwh, 0.0);
        assert!(result.deficit_before_mwh > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn rejects_empty_fleet() {
        let _ = migrate_load(&[], MigrationConfig::default());
    }

    #[test]
    fn misaligned_sites_error() {
        let sites = vec![
            site("a", vec![1.0, 1.0], vec![0.0, 0.0], 5.0),
            site("b", vec![1.0], vec![0.0], 5.0),
        ];
        assert!(migrate_load(&sites, MigrationConfig::default()).is_err());
    }
}
