//! SLO-tier-aware scheduling: each workload tier shifts within its own
//! completion window (paper Figure 10: ±1 h, ±2 h, ±4 h, daily, none).
//!
//! The paper's evaluation treats all flexible work as daily-shiftable;
//! this scheduler refines that by honoring the per-tier windows, so the
//! coverage gain attributable to each tier can be measured (the ablation
//! in the repro harness uses it).

use ce_timeseries::time::HOURS_PER_DAY;
use ce_timeseries::{HourlySeries, TimeSeriesError};
use serde::{Deserialize, Serialize};

/// One schedulable workload tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierSpec {
    /// Fraction of total hourly load in this tier (tiers plus the
    /// inflexible remainder should sum to at most 1).
    pub fraction: f64,
    /// Maximum shift distance in hours (`None` = anywhere within the day;
    /// matching the paper's daily/no-SLO tiers, shifting is still bounded
    /// by the day so SLOs measured in completion time hold).
    pub window_hours: Option<u32>,
}

/// Tier-aware greedy scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct TieredScheduler {
    /// Hard cap on post-scheduling hourly power, MW.
    pub max_capacity_mw: f64,
    /// The schedulable tiers.
    pub tiers: Vec<TierSpec>,
}

impl TieredScheduler {
    /// Creates a scheduler.
    ///
    /// # Panics
    ///
    /// Panics if tier fractions are negative or sum beyond 1, or the
    /// capacity is negative.
    pub fn new(max_capacity_mw: f64, tiers: Vec<TierSpec>) -> Self {
        assert!(max_capacity_mw >= 0.0, "capacity must be non-negative");
        let total: f64 = tiers.iter().map(|t| t.fraction).sum();
        assert!(
            tiers.iter().all(|t| t.fraction >= 0.0) && total <= 1.0 + 1e-9,
            "tier fractions must be non-negative and sum to at most 1"
        );
        Self {
            max_capacity_mw,
            tiers,
        }
    }

    /// The paper's Figure 10 mix over a given overall flexible fraction:
    /// the five Meta data-processing tiers with their SLO windows.
    pub fn meta_tiers(max_capacity_mw: f64, flexible_fraction: f64) -> Self {
        let spec = [
            (0.088, Some(1)),
            (0.038, Some(2)),
            (0.105, Some(4)),
            (0.712, Some(24)),
            (0.057, None),
        ];
        Self::new(
            max_capacity_mw,
            spec.iter()
                .map(|&(share, window)| TierSpec {
                    fraction: flexible_fraction * share,
                    window_hours: window,
                })
                .collect(),
        )
    }

    /// Schedules against a renewable supply, tier by tier from the most
    /// flexible (largest window) to the least: wide-window work grabs the
    /// deep-surplus hours, narrow-window work fine-tunes locally.
    ///
    /// # Errors
    ///
    /// Returns an alignment error if the series are misaligned.
    pub fn schedule(
        &self,
        demand: &HourlySeries,
        supply: &HourlySeries,
    ) -> Result<HourlySeries, TimeSeriesError> {
        demand.check_aligned(supply)?;
        let mut load = demand.values().to_vec();

        let mut order: Vec<&TierSpec> = self.tiers.iter().collect();
        order.sort_by_key(|t| std::cmp::Reverse(t.window_hours.unwrap_or(u32::MAX)));

        let full_days = demand.len() / HOURS_PER_DAY;
        for tier in order {
            if tier.fraction <= 0.0 {
                continue;
            }
            for day in 0..full_days {
                let base = day * HOURS_PER_DAY;
                self.schedule_tier_day(
                    &mut load[base..base + HOURS_PER_DAY],
                    &demand.values()[base..base + HOURS_PER_DAY],
                    &supply.values()[base..base + HOURS_PER_DAY],
                    tier,
                );
            }
        }
        Ok(HourlySeries::from_values(demand.start(), load))
    }

    fn schedule_tier_day(
        &self,
        load: &mut [f64],
        original: &[f64],
        supply: &[f64],
        tier: &TierSpec,
    ) {
        let n = load.len();
        let window = tier
            .window_hours
            .and_then(|w| usize::try_from(w).ok())
            .unwrap_or(n);
        // Deficit hours, worst first.
        let mut sources: Vec<usize> = (0..n).collect();
        sources.sort_by(|&a, &b| {
            let da = load[a] - supply[a];
            let db = load[b] - supply[b];
            db.partial_cmp(&da).expect("no NaN")
        });
        for src in sources {
            let mut movable = original[src] * tier.fraction;
            if load[src] - supply[src] <= 1e-12 {
                continue; // not in deficit
            }
            // Candidate destinations inside the window, best surplus first.
            let lo = src.saturating_sub(window);
            let hi = (src + window + 1).min(n);
            let mut dests: Vec<usize> = (lo..hi).filter(|&d| d != src).collect();
            dests.sort_by(|&a, &b| {
                let sa = supply[a] - load[a];
                let sb = supply[b] - load[b];
                sb.partial_cmp(&sa).expect("no NaN")
            });
            for dst in dests {
                if movable <= 1e-12 {
                    break;
                }
                let surplus = (supply[dst] - load[dst]).max(0.0);
                let headroom = (self.max_capacity_mw - load[dst]).max(0.0);
                let deficit = (load[src] - supply[src]).max(0.0);
                let amount = movable.min(surplus).min(headroom).min(deficit);
                if amount > 1e-12 {
                    load[src] -= amount;
                    load[dst] += amount;
                    movable -= amount;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ce_timeseries::Timestamp;

    fn start() -> Timestamp {
        Timestamp::start_of_year(2020)
    }

    fn deficit(demand: &HourlySeries, supply: &HourlySeries) -> f64 {
        demand
            .zip_with(supply, |d, s| (d - s).max(0.0))
            .unwrap()
            .sum()
    }

    fn solar_day() -> HourlySeries {
        HourlySeries::from_fn(
            start(),
            24,
            |h| if (8..16).contains(&h) { 40.0 } else { 0.0 },
        )
    }

    #[test]
    fn narrow_windows_limit_how_far_load_travels() {
        let demand = HourlySeries::constant(start(), 24, 10.0);
        let supply = solar_day();
        // A ±2h tier can only help hours 6-17; midnight stays uncovered.
        let narrow = TieredScheduler::new(
            50.0,
            vec![TierSpec {
                fraction: 0.5,
                window_hours: Some(2),
            }],
        );
        let wide = TieredScheduler::new(
            50.0,
            vec![TierSpec {
                fraction: 0.5,
                window_hours: Some(24),
            }],
        );
        let narrow_result = narrow.schedule(&demand, &supply).unwrap();
        let wide_result = wide.schedule(&demand, &supply).unwrap();
        assert!(deficit(&wide_result, &supply) < deficit(&narrow_result, &supply));
        // Midnight load is untouched by the ±2h tier.
        assert_eq!(narrow_result[0], 10.0);
    }

    #[test]
    fn daily_energy_is_conserved_per_day() {
        let demand = HourlySeries::from_fn(start(), 48, |h| 10.0 + (h % 3) as f64);
        let supply = HourlySeries::from_fn(start(), 48, |h| ((h * 5) % 29) as f64);
        let scheduler = TieredScheduler::meta_tiers(40.0, 0.4);
        let result = scheduler.schedule(&demand, &supply).unwrap();
        for day in 0..2 {
            let orig: f64 = demand.values()[day * 24..(day + 1) * 24].iter().sum();
            let new: f64 = result.values()[day * 24..(day + 1) * 24].iter().sum();
            assert!((orig - new).abs() < 1e-9);
        }
    }

    #[test]
    fn capacity_cap_is_respected() {
        let demand = HourlySeries::constant(start(), 24, 10.0);
        let supply = solar_day();
        let scheduler = TieredScheduler::new(
            12.0,
            vec![TierSpec {
                fraction: 1.0,
                window_hours: None,
            }],
        );
        let result = scheduler.schedule(&demand, &supply).unwrap();
        for &v in result.values() {
            assert!(v <= 12.0 + 1e-9);
        }
    }

    #[test]
    fn meta_tiers_match_figure_10() {
        let scheduler = TieredScheduler::meta_tiers(100.0, 0.4);
        let total: f64 = scheduler.tiers.iter().map(|t| t.fraction).sum();
        assert!((total - 0.4).abs() < 1e-9);
        assert_eq!(scheduler.tiers.len(), 5);
        assert_eq!(scheduler.tiers[3].window_hours, Some(24));
        assert_eq!(scheduler.tiers[4].window_hours, None);
    }

    #[test]
    fn scheduling_never_increases_deficit() {
        let demand = HourlySeries::from_fn(start(), 72, |h| 5.0 + ((h * 7) % 11) as f64);
        let supply = HourlySeries::from_fn(start(), 72, |h| ((h * 13) % 23) as f64);
        let scheduler = TieredScheduler::meta_tiers(30.0, 0.4);
        let result = scheduler.schedule(&demand, &supply).unwrap();
        assert!(deficit(&result, &supply) <= deficit(&demand, &supply) + 1e-9);
    }

    #[test]
    fn more_tiers_help_more_than_fewer() {
        let demand = HourlySeries::constant(start(), 24, 10.0);
        let supply = solar_day();
        let daily_only = TieredScheduler::new(
            50.0,
            vec![TierSpec {
                fraction: 0.4 * 0.712,
                window_hours: Some(24),
            }],
        );
        let all = TieredScheduler::meta_tiers(50.0, 0.4);
        let a = daily_only.schedule(&demand, &supply).unwrap();
        let b = all.schedule(&demand, &supply).unwrap();
        assert!(deficit(&b, &supply) <= deficit(&a, &supply) + 1e-9);
    }

    #[test]
    #[should_panic(expected = "tier fractions")]
    fn rejects_overcommitted_tiers() {
        TieredScheduler::new(
            10.0,
            vec![
                TierSpec {
                    fraction: 0.8,
                    window_hours: Some(4),
                },
                TierSpec {
                    fraction: 0.5,
                    window_hours: None,
                },
            ],
        );
    }

    #[test]
    fn misaligned_series_error() {
        let demand = HourlySeries::zeros(start(), 24);
        let supply = HourlySeries::zeros(start(), 25);
        let scheduler = TieredScheduler::meta_tiers(10.0, 0.4);
        assert!(scheduler.schedule(&demand, &supply).is_err());
    }
}
