//! Per-shard response caching: an owned LRU keyed by canonical scenario
//! keys, plus a raw-bytes memo that lets the hot path skip JSON parsing
//! entirely.
//!
//! Each event shard owns one [`ShardCache`] and one [`RawMemo`]
//! exclusively (`&mut self` everywhere — no locks on the hot path; the
//! sharding *is* the synchronization). Cached bodies store the exact
//! bytes a fresh computation produced, so a cached response is bitwise
//! identical to an uncached one; chunked responses additionally store
//! their fragment boundaries ([`CachedBody::Chunked`]) so a replay frames
//! identical HTTP chunks on the wire.
//!
//! Recency is tracked with a monotonic tick and an order map
//! (`tick → key`), giving `O(log n)` get/insert/evict with only `std`
//! collections. `BTreeMap` keeps iteration deterministic, in keeping with
//! the workspace-wide ban on hashed containers.
//!
//! [`RawMemo`] maps the *hash of the raw request bytes* (route + body, see
//! [`crate::hash`]) to the already-derived canonical key and parsed
//! request. A repeat of the byte-identical request — the common shape of
//! a hot serving workload — skips UTF-8 validation, JSON parsing, request
//! validation, and canonical-key rendering. Collisions are harmless: the
//! stored raw bytes are compared before the entry is trusted.

use crate::request::{ComputeKind, ComputeRequest};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// A cached response body, in the framing it was first served with.
#[derive(Clone)]
pub enum CachedBody {
    /// A `content-length` body: the full encoded bytes.
    Full(Arc<str>),
    /// A `transfer-encoding: chunked` body: the fragments, in order.
    /// Concatenating them yields the buffered encoding; replaying them
    /// one HTTP chunk each reproduces the fresh response byte-for-byte.
    Chunked(Arc<[Arc<str>]>),
}

struct Entry {
    body: CachedBody,
    tick: u64,
}

/// A fixed-capacity LRU response cache owned by one event shard.
pub struct ShardCache {
    entries: BTreeMap<Arc<str>, Entry>,
    /// Recency index: tick of last touch → key. Oldest tick = LRU victim.
    order: BTreeMap<u64, Arc<str>>,
    tick: u64,
    capacity: usize,
}

impl ShardCache {
    /// Creates a cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: BTreeMap::new(),
            order: BTreeMap::new(),
            tick: 0,
            capacity: capacity.max(1),
        }
    }

    /// Looks up `key`, bumping its recency on a hit.
    pub fn get(&mut self, key: &str) -> Option<CachedBody> {
        self.tick += 1;
        let new_tick = self.tick;
        let entry = self.entries.get_mut(key)?;
        let old_tick = entry.tick;
        entry.tick = new_tick;
        let body = entry.body.clone();
        if let Some(k) = self.order.remove(&old_tick) {
            self.order.insert(new_tick, k);
        }
        Some(body)
    }

    /// Inserts (or refreshes) `key → body`, evicting least-recently used
    /// entries while over capacity. Returns how many entries were evicted
    /// (an observability counter, not a correctness signal).
    pub fn insert(&mut self, key: &str, body: CachedBody) -> u64 {
        self.tick += 1;
        let new_tick = self.tick;
        if let Some(entry) = self.entries.get_mut(key) {
            let old_tick = entry.tick;
            entry.tick = new_tick;
            entry.body = body;
            if let Some(k) = self.order.remove(&old_tick) {
                self.order.insert(new_tick, k);
            }
            return 0;
        }
        let key: Arc<str> = Arc::from(key);
        self.entries.insert(
            Arc::clone(&key),
            Entry {
                body,
                tick: new_tick,
            },
        );
        self.order.insert(new_tick, key);
        let mut evicted = 0;
        while self.entries.len() > self.capacity {
            let Some((_, victim)) = self.order.pop_first() else {
                break;
            };
            self.entries.remove(&victim);
            evicted += 1;
        }
        evicted
    }

    /// Entries currently held (a gauge for `/stats`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One memoized request: the raw bytes it must match, the canonical key
/// they map to, and the validated request (kept so a memo hit that misses
/// the response cache can still enqueue a job without re-parsing).
struct MemoEntry {
    raw: Vec<u8>,
    key: Arc<str>,
    request: ComputeRequest,
}

/// A bounded FIFO memo from raw request bytes to their parse result,
/// keyed by [`crate::hash::hash_bytes`] with the raw bytes stored for
/// collision-proof comparison.
pub struct RawMemo {
    entries: BTreeMap<u64, MemoEntry>,
    order: VecDeque<u64>,
    capacity: usize,
}

impl RawMemo {
    /// Creates a memo holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: BTreeMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// The canonical key and parsed request memoized for `raw` posted as
    /// `kind`, if these exact bytes were seen before on the same endpoint
    /// (hash matches *and* the kind and bytes compare equal — a colliding
    /// hash whose bytes or endpoint differ is a miss).
    pub fn get(
        &self,
        hash: u64,
        kind: ComputeKind,
        raw: &[u8],
    ) -> Option<(&Arc<str>, &ComputeRequest)> {
        let entry = self.entries.get(&hash)?;
        if entry.request.kind() == kind && entry.raw == raw {
            Some((&entry.key, &entry.request))
        } else {
            None
        }
    }

    /// Memoizes `raw → (key, request)`, evicting the oldest entry at
    /// capacity. A hash already present is overwritten (latest bytes win;
    /// the stale FIFO slot for the old value expires harmlessly).
    pub fn insert(&mut self, hash: u64, raw: Vec<u8>, key: Arc<str>, request: ComputeRequest) {
        if self
            .entries
            .insert(hash, MemoEntry { raw, key, request })
            .is_none()
        {
            self.order.push_back(hash);
            while self.entries.len() > self.capacity {
                let Some(oldest) = self.order.pop_front() else {
                    break;
                };
                self.entries.remove(&oldest);
            }
        }
    }

    /// Entries currently memoized.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash_bytes;
    use crate::json::Json;
    use crate::request::{ComputeKind, Limits};

    fn body(s: &str) -> CachedBody {
        CachedBody::Full(Arc::from(s))
    }

    fn full(b: &CachedBody) -> &str {
        match b {
            CachedBody::Full(s) => s,
            CachedBody::Chunked(_) => panic!("expected Full"),
        }
    }

    #[test]
    fn get_returns_inserted_bytes_shared() {
        let mut cache = ShardCache::new(8);
        cache.insert("k1", body("{\"v\":1}"));
        let hit = cache.get("k1").expect("hit");
        assert_eq!(full(&hit), "{\"v\":1}");
        assert!(cache.get("k2").is_none());
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn insert_refreshes_existing_key_without_eviction() {
        let mut cache = ShardCache::new(8);
        assert_eq!(cache.insert("k", body("old")), 0);
        assert_eq!(cache.insert("k", body("new")), 0);
        assert_eq!(full(&cache.get("k").expect("hit")), "new");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_eviction_respects_recency_and_is_counted() {
        let mut cache = ShardCache::new(2);
        cache.insert("a", body("A"));
        cache.insert("b", body("B"));
        // Touch `a` so `b` becomes the LRU victim.
        assert!(cache.get("a").is_some());
        assert_eq!(cache.insert("c", body("C")), 1);
        assert!(cache.get("a").is_some(), "recently used survives");
        assert!(cache.get("b").is_none(), "LRU evicted");
        assert!(cache.get("c").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn chunked_bodies_keep_their_fragment_boundaries() {
        let mut cache = ShardCache::new(4);
        let fragments: Arc<[Arc<str>]> =
            vec![Arc::<str>::from("{\"a\":["), Arc::<str>::from("1]}")].into();
        cache.insert("k", CachedBody::Chunked(Arc::clone(&fragments)));
        match cache.get("k").expect("hit") {
            CachedBody::Chunked(got) => {
                assert_eq!(got.len(), 2);
                assert_eq!(&*got[0], "{\"a\":[");
                assert_eq!(&*got[1], "1]}");
            }
            CachedBody::Full(_) => panic!("framing lost"),
        }
    }

    fn parse_request(raw: &str) -> ComputeRequest {
        ComputeRequest::parse(
            ComputeKind::Evaluate,
            &Json::parse(raw).expect("valid"),
            &Limits::default(),
        )
        .expect("parses")
    }

    #[test]
    fn memo_hits_only_on_byte_identical_raw() {
        let raw = br#"{"site":"UT","strategy":"renewables_only","design":{"solar_mw":100}}"#;
        let request = parse_request(std::str::from_utf8(raw).expect("utf8"));
        let key: Arc<str> = Arc::from(request.canonical_key().as_str());
        let mut memo = RawMemo::new(4);
        let hash = hash_bytes(raw);
        assert!(memo.get(hash, ComputeKind::Evaluate, raw).is_none());
        memo.insert(hash, raw.to_vec(), Arc::clone(&key), request);
        let (got_key, got_req) = memo
            .get(hash, ComputeKind::Evaluate, raw)
            .expect("memo hit");
        assert!(Arc::ptr_eq(got_key, &key));
        assert_eq!(got_req.canonical_key(), &*key);
        // Same hash, different bytes (a simulated collision) must miss,
        // and the same bytes posted to a different endpoint must miss.
        assert!(memo
            .get(hash, ComputeKind::Evaluate, b"different bytes")
            .is_none());
        assert!(memo.get(hash, ComputeKind::Explore, raw).is_none());
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn memo_evicts_fifo_at_capacity() {
        let raw = r#"{"site":"UT","strategy":"renewables_only","design":{"solar_mw":100}}"#;
        let request = parse_request(raw);
        let key: Arc<str> = Arc::from("k");
        let mut memo = RawMemo::new(2);
        for i in 0u64..3 {
            memo.insert(i, vec![i as u8], Arc::clone(&key), request.clone());
        }
        assert_eq!(memo.len(), 2);
        let kind = ComputeKind::Evaluate;
        assert!(memo.get(0, kind, &[0]).is_none(), "oldest evicted");
        assert!(memo.get(1, kind, &[1]).is_some());
        assert!(memo.get(2, kind, &[2]).is_some());
        assert!(!memo.is_empty());
    }
}
