//! A sharded LRU cache mapping canonical scenario keys to encoded
//! response bodies.
//!
//! The cache stores the exact bytes a fresh computation produced
//! (`Arc<str>` — handing out a hit is a refcount bump, not a copy), so a
//! cached response is bitwise identical to an uncached one. The canonical
//! key string is the authoritative identity; the [`crate::hash`] value
//! only selects a shard, which makes hash collisions harmless — two
//! colliding keys merely share a shard and its lock.
//!
//! Recency is tracked with a monotonic per-shard tick and an order map
//! (`tick → key`), giving `O(log n)` get/insert/evict with only `std`
//! collections. `BTreeMap` keeps iteration deterministic, in keeping with
//! the workspace-wide ban on hashed containers.

use crate::hash::hash_str;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

struct Entry {
    body: Arc<str>,
    tick: u64,
}

#[derive(Default)]
struct Shard {
    entries: BTreeMap<Arc<str>, Entry>,
    /// Recency index: tick of last touch → key. Oldest tick = LRU victim.
    order: BTreeMap<u64, Arc<str>>,
    tick: u64,
}

/// A fixed-capacity, sharded LRU response cache.
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    per_shard: usize,
}

impl ShardedCache {
    /// Creates a cache of roughly `capacity` entries spread over `shards`
    /// shards (rounded up to a power of two, clamped to `1..=64`). Each
    /// shard holds `ceil(capacity / shards)` entries, so the true bound is
    /// `capacity` rounded up to a shard multiple.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shard_count = shards.clamp(1, 64).next_power_of_two();
        let per_shard = capacity.max(1).div_ceil(shard_count);
        Self {
            shards: (0..shard_count)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            per_shard,
        }
    }

    fn shard(&self, key: &str) -> MutexGuard<'_, Shard> {
        // High bits: the low bits of a multiply-mix hash are the weakest.
        let idx = (hash_str(key) >> 32) as usize & (self.shards.len() - 1);
        // Poisoning: a panic while holding the lock cannot leave the maps
        // inconsistent enough to matter for a cache — worst case an entry
        // is missing from one index and unevictable; recover and serve.
        self.shards[idx]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up `key`, bumping its recency on a hit.
    pub fn get(&self, key: &str) -> Option<Arc<str>> {
        let mut guard = self.shard(key);
        let shard = &mut *guard;
        shard.tick += 1;
        let new_tick = shard.tick;
        let entry = shard.entries.get_mut(key)?;
        let old_tick = entry.tick;
        entry.tick = new_tick;
        let body = Arc::clone(&entry.body);
        if let Some(k) = shard.order.remove(&old_tick) {
            shard.order.insert(new_tick, k);
        }
        Some(body)
    }

    /// Inserts (or refreshes) `key → body`, evicting the least-recently
    /// used entries of the shard if it is over capacity.
    pub fn insert(&self, key: &str, body: Arc<str>) {
        let mut guard = self.shard(key);
        let shard = &mut *guard;
        shard.tick += 1;
        let new_tick = shard.tick;
        if let Some(entry) = shard.entries.get_mut(key) {
            let old_tick = entry.tick;
            entry.tick = new_tick;
            entry.body = body;
            if let Some(k) = shard.order.remove(&old_tick) {
                shard.order.insert(new_tick, k);
            }
            return;
        }
        let key: Arc<str> = Arc::from(key);
        shard.entries.insert(
            Arc::clone(&key),
            Entry {
                body,
                tick: new_tick,
            },
        );
        shard.order.insert(new_tick, key);
        while shard.entries.len() > self.per_shard {
            let Some((_, victim)) = shard.order.pop_first() else {
                break;
            };
            shard.entries.remove(&victim);
        }
    }

    /// Total entries across all shards (a gauge for `/stats`).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .entries
                    .len()
            })
            .sum()
    }

    /// `true` if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn get_returns_inserted_bytes_shared() {
        let cache = ShardedCache::new(8, 2);
        cache.insert("k1", body("{\"v\":1}"));
        let hit = cache.get("k1").expect("hit");
        assert_eq!(&*hit, "{\"v\":1}");
        // Same allocation, not a copy.
        assert!(Arc::ptr_eq(&hit, &cache.get("k1").expect("hit")));
        assert!(cache.get("k2").is_none());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn insert_refreshes_existing_key() {
        let cache = ShardedCache::new(8, 1);
        cache.insert("k", body("old"));
        cache.insert("k", body("new"));
        assert_eq!(&*cache.get("k").expect("hit"), "new");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_eviction_respects_recency() {
        // Single shard, capacity 2.
        let cache = ShardedCache::new(2, 1);
        cache.insert("a", body("A"));
        cache.insert("b", body("B"));
        // Touch `a` so `b` becomes the LRU victim.
        assert!(cache.get("a").is_some());
        cache.insert("c", body("C"));
        assert!(cache.get("a").is_some(), "recently used survives");
        assert!(cache.get("b").is_none(), "LRU evicted");
        assert!(cache.get("c").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn shard_counts_round_up() {
        let cache = ShardedCache::new(3, 3); // → 4 shards, 1 entry each
        assert_eq!(cache.shards.len(), 4);
        assert_eq!(cache.per_shard, 1);
        let one = ShardedCache::new(10, 0);
        assert_eq!(one.shards.len(), 1);
        assert!(one.is_empty());
    }

    #[test]
    fn many_keys_stay_retrievable_within_capacity() {
        let cache = ShardedCache::new(64, 8);
        for i in 0..32 {
            cache.insert(&format!("key-{i}"), body(&format!("v{i}")));
        }
        for i in 0..32 {
            assert_eq!(
                cache.get(&format!("key-{i}")).as_deref(),
                Some(format!("v{i}").as_str())
            );
        }
    }
}
