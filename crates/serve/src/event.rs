//! The per-shard readiness loop: nonblocking accept, incremental HTTP
//! parsing over partial reads, write buffering with backpressure, and
//! streamed completion delivery from the worker pool.
//!
//! One OS thread runs [`event_loop`] per shard. The thread exclusively
//! owns everything hot — the connection slab, the shard's response cache
//! and raw-bytes memo, and the in-flight coalescing map — so the request
//! path takes **no locks**: sharding is the synchronization. Workers hand
//! results back through a `Mutex<VecDeque>` of [`Completion`]s plus a
//! loopback-socket [`Waker`], the only cross-thread traffic.
//!
//! # Connection state machine
//!
//! ```text
//!            ┌───────── reading ─────────┐
//!   POLLIN → │ buf grows; find_head_end  │→ head → body complete →
//!            │ resumes its scan offset   │        dispatch
//!            └───────────────────────────┘          │
//!   GET endpoints / cache hits: answered inline ────┤
//!   cache miss: waiter attached, conn → awaiting ───┤
//!                                                   ▼
//!            ┌───────── writing ─────────┐   responses append to `out`
//!   POLLOUT→ │ flush out[out_pos..]      │ ← (batched across pipelined
//!            └───────────────────────────┘    requests; short writes
//!                                             counted, never lost)
//! ```
//!
//! HTTP/1.1 responses are in-order, so a connection with an outstanding
//! computation (`awaiting`) stops parsing until the result lands; a
//! connection whose output backlog passes the high-water mark stops
//! *reading* (backpressure) until the peer drains it. A deadline sweep
//! closes connections stalled mid-request (slow-loris, `408`), idle
//! keep-alive sockets past `idle_timeout`, and write-stalled peers.

use crate::cache::{CachedBody, RawMemo, ShardCache};
use crate::hash::hash_bytes;
use crate::http::{self, Head, Target};
use crate::json::Json;
use crate::metrics::Endpoint;
use crate::request::{ComputeKind, ComputeRequest, RequestError};
use crate::server::{stats_json, Job, ShardShared, Shared};
use crate::sys::{self, PollFd, POLLHUP, POLLIN, POLLOUT};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Output backlog (bytes) beyond which a connection stops being read.
const OUT_HIGH_WATER: usize = 256 * 1024;
/// Flushed-prefix length beyond which the output buffer is compacted.
const OUT_COMPACT: usize = 64 * 1024;
/// Size of the shared read scratch buffer.
const READ_CHUNK: usize = 64 * 1024;
/// Poll timeout, which also paces the deadline sweep.
const SWEEP_MS: i32 = 250;

/// Wakes a shard's event loop from a worker thread. One byte travels over
/// a loopback socket pair; the `pending` flag coalesces bursts so a busy
/// worker never blocks on a full pipe.
pub(crate) struct Waker {
    tx: Mutex<TcpStream>,
    pending: std::sync::atomic::AtomicBool,
}

impl Waker {
    /// Wraps the write half of the shard's loopback pair.
    pub(crate) fn new(tx: TcpStream) -> Self {
        Self {
            tx: Mutex::new(tx),
            pending: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Signals the event loop; a no-op if a wake is already pending.
    /// Callers must enqueue their [`Completion`] *before* waking.
    pub(crate) fn wake(&self) {
        // ce:ordering(acquire pairs with rearm's release; release orders the completion enqueue before the byte; no total order needed)
        if !self.pending.swap(true, Ordering::AcqRel) {
            let mut tx = self.tx.lock().unwrap_or_else(PoisonError::into_inner);
            let _ = tx.write(&[1]);
        }
    }

    /// Re-arms the waker. The event loop calls this after draining the
    /// pipe and before draining the completion queue: any producer that
    /// skipped its byte (saw `pending`) enqueued before our drain, and
    /// any producer arriving after re-arm writes a fresh byte.
    pub(crate) fn rearm(&self) {
        // ce:ordering(release pairs with wake's acquire swap; late producers write a fresh pipe byte)
        self.pending.store(false, Ordering::Release);
    }
}

/// A worker's message back to its shard's event loop.
pub(crate) enum Completion {
    /// One fragment of a streamed `/explore` body, in order.
    Chunk {
        /// Canonical key of the computation this fragment belongs to.
        key: Arc<str>,
        /// The fragment (one HTTP chunk on the wire).
        fragment: Arc<str>,
    },
    /// The computation finished.
    Done {
        /// Canonical key of the finished computation.
        key: Arc<str>,
        /// HTTP status of the outcome.
        status: u16,
        /// Encoded body for `content-length` responses (and for errors);
        /// `None` when the body already went out as chunks.
        body: Option<Arc<str>>,
        /// Whether fragments were streamed before this completion — if
        /// so, an error can only be reported by truncating the stream.
        streamed: bool,
    },
}

/// One connection's state.
struct Conn {
    stream: TcpStream,
    generation: u64,
    /// Unparsed input; `pos..` is live, `..pos` is consumed (compacted
    /// once per event, not per request — pipelined bursts stay `O(n)`).
    buf: Vec<u8>,
    pos: usize,
    /// Absolute resume offset of the head-terminator scan.
    scan: usize,
    /// Parsed head whose body has not fully arrived yet.
    head: Option<Head>,
    /// Buffered output; `out_pos..` is unflushed.
    out: Vec<u8>,
    out_pos: usize,
    /// Canonical key of the in-flight computation this connection waits
    /// on (parsing pauses while set — HTTP/1.1 responses are in-order).
    awaiting: Option<Arc<str>>,
    /// `keep-alive` disposition of the request currently being answered.
    req_keep_alive: bool,
    close_after_flush: bool,
    read_eof: bool,
    last_activity: Instant,
}

impl Conn {
    fn new(stream: TcpStream, generation: u64, now: Instant) -> Self {
        Self {
            stream,
            generation,
            buf: Vec::new(),
            pos: 0,
            scan: 0,
            head: None,
            out: Vec::new(),
            out_pos: 0,
            awaiting: None,
            req_keep_alive: true,
            close_after_flush: false,
            read_eof: false,
            last_activity: now,
        }
    }

    fn out_pending(&self) -> bool {
        self.out_pos < self.out.len()
    }

    fn wants_read(&self) -> bool {
        !self.read_eof
            && !self.close_after_flush
            && self.awaiting.is_none()
            && self.out.len() - self.out_pos < OUT_HIGH_WATER
    }

    /// `true` while a request head or body is partially buffered.
    fn mid_request(&self) -> bool {
        self.head.is_some() || self.buf.len() > self.pos
    }
}

/// Generation-checked connection storage with slot reuse.
struct Slab {
    slots: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_generation: u64,
}

impl Slab {
    fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            next_generation: 0,
        }
    }

    fn insert(&mut self, stream: TcpStream, now: Instant) -> usize {
        self.next_generation += 1;
        let conn = Conn::new(stream, self.next_generation, now);
        // ce:allow(blocking, reason = "Vec::pop on the free list; only shares a name with the parking queue pop")
        if let Some(slot) = self.free.pop() {
            if let Some(entry) = self.slots.get_mut(slot) {
                *entry = Some(conn);
                return slot;
            }
        }
        self.slots.push(Some(conn));
        self.slots.len() - 1
    }

    /// The connection in `slot`, if it is still the one from when the
    /// caller recorded `generation` (a freed-and-reused slot is `None`).
    fn get_mut(&mut self, slot: usize, generation: u64) -> Option<&mut Conn> {
        self.slots
            .get_mut(slot)?
            .as_mut()
            .filter(|c| c.generation == generation)
    }

    fn slot_mut(&mut self, slot: usize) -> Option<&mut Conn> {
        self.slots.get_mut(slot)?.as_mut()
    }

    fn remove(&mut self, slot: usize) -> Option<Conn> {
        let conn = self.slots.get_mut(slot)?.take();
        if conn.is_some() {
            self.free.push(slot);
        }
        conn
    }

    fn iter(&self) -> impl Iterator<Item = (usize, &Conn)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|c| (i, c)))
    }

    fn occupied(&self) -> usize {
        self.slots.len() - self.free.len()
    }
}

/// One coalesced waiter on an in-flight computation.
struct Waiter {
    slot: usize,
    generation: u64,
    started: Instant,
    /// `x-ce-cache` note this waiter will be answered with.
    note: &'static str,
    /// Fragments already framed into this waiter's output.
    sent_chunks: usize,
    /// Whether the chunked response head went out (after which an error
    /// can only be a truncated stream).
    header_written: bool,
}

/// One in-flight computation and everyone waiting on it.
struct Inflight {
    endpoint: Endpoint,
    started: Instant,
    /// Streamed fragments delivered so far (late waiters catch up from
    /// here; the finished list becomes the cached chunked body).
    chunks: Vec<Arc<str>>,
    waiters: Vec<Waiter>,
}

fn error_body(message: &str) -> String {
    Json::obj(vec![("error", Json::string(message))]).encode()
}

/// Salts the body hash with the endpoint so byte-identical bodies posted
/// to different compute endpoints never share a memo entry.
fn memo_hash(kind: ComputeKind, body: &[u8]) -> u64 {
    hash_bytes(body) ^ (kind as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

fn kind_endpoint(target: Target) -> Option<(ComputeKind, Endpoint)> {
    match target {
        Target::Evaluate => Some((ComputeKind::Evaluate, Endpoint::Evaluate)),
        Target::Explore => Some((ComputeKind::Explore, Endpoint::Explore)),
        Target::Optimal => Some((ComputeKind::Optimal, Endpoint::Optimal)),
        _ => None,
    }
}

/// Runs one shard's readiness loop until shutdown completes.
// ce:entry
pub(crate) fn event_loop(
    shared: Arc<Shared>,
    shard_index: usize,
    listener: TcpListener,
    waker_rx: TcpStream,
) {
    let Some(shard) = shared.shards.get(shard_index).map(Arc::clone) else {
        return; // misconfigured spawn; nothing this thread can serve
    };
    let shard_count = shared.shards.len().max(1);
    let cache_capacity = shared.config.cache_capacity.div_ceil(shard_count).max(1);
    let mut lp = Loop {
        shared,
        shard,
        listener: Some(listener),
        waker_rx,
        slab: Slab::new(),
        inflight: BTreeMap::new(),
        cache: ShardCache::new(cache_capacity),
        memo: RawMemo::new(cache_capacity.max(64)),
        read_buf: vec![0; READ_CHUNK],
        body: Vec::new(),
        dirty: Vec::new(),
        shutdown_deadline: None,
    };
    lp.run();
}

struct Loop {
    shared: Arc<Shared>,
    shard: Arc<ShardShared>,
    listener: Option<TcpListener>,
    waker_rx: TcpStream,
    slab: Slab,
    inflight: BTreeMap<Arc<str>, Inflight>,
    cache: ShardCache,
    memo: RawMemo,
    read_buf: Vec<u8>,
    /// Scratch copy of the current request body (so the connection buffer
    /// can be mutably borrowed while the body is inspected).
    body: Vec<u8>,
    /// Slots touched by completion delivery, to resume and flush after.
    dirty: Vec<usize>,
    shutdown_deadline: Option<Instant>,
}

impl Loop {
    fn run(&mut self) {
        let mut fds: Vec<PollFd> = Vec::new();
        let mut fd_slots: Vec<(usize, u64)> = Vec::new();
        loop {
            let now = Instant::now();
            // ce:ordering(acquire pairs with stop's release swap, making pre-shutdown writes visible)
            let shutting_down = self.shared.shutdown.load(Ordering::Acquire);
            if shutting_down {
                // Stop accepting (dropping the clone releases the port
                // once every shard has) and drain what remains.
                self.listener = None;
                let deadline = *self
                    .shutdown_deadline
                    .get_or_insert(now + Duration::from_secs(10));
                self.close_drained_for_shutdown();
                if (self.inflight.is_empty() && self.slab.occupied() == 0) || now >= deadline {
                    break;
                }
            }

            fds.clear();
            fd_slots.clear();
            fds.push(PollFd::new(self.waker_rx.as_raw_fd(), POLLIN));
            let listener_idx = self.listener.as_ref().map(|l| {
                fds.push(PollFd::new(l.as_raw_fd(), POLLIN));
                fds.len() - 1
            });
            let conn_base = fds.len();
            for (slot, conn) in self.slab.iter() {
                let mut events = 0i16;
                if conn.wants_read() {
                    events |= POLLIN;
                }
                if conn.out_pending() {
                    events |= POLLOUT;
                }
                fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                fd_slots.push((slot, conn.generation));
            }

            let timeout = if shutting_down { 10 } else { SWEEP_MS };
            if sys::poll(&mut fds, timeout).is_err() {
                // EINVAL/ENOMEM would spin; back off rather than burn CPU.
                std::thread::sleep(Duration::from_millis(10));
            }
            self.tick(&fds, listener_idx, &fd_slots, conn_base);
        }
    }

    /// One reactor step after `poll` returns: drain the waker, deliver
    /// completions, accept, service ready connections, sweep deadlines.
    /// Everything here runs on the shard's only thread; the analyzer
    /// verifies transitively that nothing in it can block.
    // ce:nonblocking
    fn tick(
        &mut self,
        fds: &[PollFd],
        listener_idx: Option<usize>,
        fd_slots: &[(usize, u64)],
        conn_base: usize,
    ) {
        // ce:ordering(monotone telemetry counter; readers tolerate skew)
        self.shard.stats.polls.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();

        if fds.first().is_some_and(|f| f.returned(POLLIN)) {
            // ce:ordering(monotone telemetry counter; readers tolerate skew)
            self.shard.stats.wakeups.fetch_add(1, Ordering::Relaxed);
            self.drain_waker_pipe();
        }
        self.deliver_completions(now);
        if let Some(i) = listener_idx {
            if fds.get(i).is_some_and(|f| f.returned(POLLIN)) {
                self.accept_ready(now);
            }
        }
        for (i, &(slot, generation)) in fd_slots.iter().enumerate() {
            let Some(&pfd) = fds.get(conn_base + i) else {
                break;
            };
            if self.slab.get_mut(slot, generation).is_none() {
                continue; // closed (or reused) during this iteration
            }
            if pfd.failed() {
                self.close_conn(slot);
                continue;
            }
            if pfd.returned(POLLIN) {
                self.handle_readable(slot, now);
            } else if pfd.returned(POLLHUP) {
                self.close_conn(slot);
                continue;
            }
            if pfd.returned(POLLOUT) && self.slab.get_mut(slot, generation).is_some() {
                self.try_flush(slot, now);
                self.process_conn(slot, now);
            }
        }
        self.sweep(now);
    }

    fn drain_waker_pipe(&mut self) {
        loop {
            // ce:allow(blocking, reason = "nonblocking loopback socket: reads return WouldBlock, never park")
            match self.waker_rx.read(&mut self.read_buf) {
                Ok(0) => break, // worker side gone (shutdown)
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        self.shard.waker.rearm();
    }

    /// Drains the completion mailbox and resumes the touched connections.
    // ce:nonblocking
    fn deliver_completions(&mut self, now: Instant) {
        loop {
            let next = self
                .shard
                .completions
                // ce:allow(blocking, reason = "completion mailbox critical section is a single pop_front; workers hold it for one push")
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front();
            let Some(completion) = next else { break };
            match completion {
                Completion::Chunk { key, fragment } => self.on_chunk(&key, fragment, now),
                Completion::Done {
                    key,
                    status,
                    body,
                    streamed,
                } => self.on_done(&key, status, body, streamed, now),
            }
        }
        // Resume parsing (pipelined requests may be buffered behind the
        // answered one) and flush every connection a completion touched.
        let dirty = std::mem::take(&mut self.dirty);
        for slot in dirty {
            self.process_conn(slot, now);
        }
    }

    fn on_chunk(&mut self, key: &Arc<str>, fragment: Arc<str>, now: Instant) {
        let Some(entry) = self.inflight.get_mut(key) else {
            return;
        };
        entry.chunks.push(fragment);
        // NB: inline (not a method call) so the `entry` borrow of
        // `self.inflight` can coexist with the `self.slab` borrow.
        for waiter in &mut entry.waiters {
            let Some(conn) = self.slab.get_mut(waiter.slot, waiter.generation) else {
                continue;
            };
            if !waiter.header_written {
                http::write_chunked_head(&mut conn.out, 200, &[("x-ce-cache", waiter.note)]);
                waiter.header_written = true;
                // ce:ordering(monotone telemetry counter; readers tolerate skew)
                self.shard.stats.streamed.fetch_add(1, Ordering::Relaxed);
            }
            for fragment in entry.chunks.iter().skip(waiter.sent_chunks) {
                http::write_chunk(&mut conn.out, fragment);
            }
            waiter.sent_chunks = entry.chunks.len();
            conn.last_activity = now;
            self.dirty.push(waiter.slot);
        }
    }

    fn on_done(
        &mut self,
        key: &Arc<str>,
        status: u16,
        body: Option<Arc<str>>,
        streamed: bool,
        now: Instant,
    ) {
        let Some(entry) = self.inflight.remove(key) else {
            return;
        };
        self.publish_inflight_gauge();
        if status == 200 {
            let cached = if streamed {
                CachedBody::Chunked(entry.chunks.clone().into())
            } else {
                match &body {
                    Some(b) => CachedBody::Full(Arc::clone(b)),
                    None => return, // worker bug; nothing to serve or cache
                }
            };
            let evicted = self.cache.insert(key, cached);
            if evicted > 0 {
                self.shard
                    // ce:ordering(monotone telemetry counter; readers tolerate skew)
                    .stats
                    .cache_evictions
                    .fetch_add(evicted, Ordering::Relaxed);
            }
            self.publish_cache_gauge();
        }
        let shared = Arc::clone(&self.shared);
        let metrics = shared.metrics.endpoint(entry.endpoint);
        for waiter in entry.waiters {
            let Some(conn) = self.slab.get_mut(waiter.slot, waiter.generation) else {
                continue;
            };
            conn.awaiting = None;
            conn.last_activity = now;
            if status == 200 {
                if streamed {
                    if !waiter.header_written {
                        http::write_chunked_head(
                            &mut conn.out,
                            200,
                            &[("x-ce-cache", waiter.note)],
                        );
                        // ce:ordering(monotone telemetry counter; readers tolerate skew)
                        self.shard.stats.streamed.fetch_add(1, Ordering::Relaxed);
                    }
                    for fragment in entry.chunks.iter().skip(waiter.sent_chunks) {
                        http::write_chunk(&mut conn.out, fragment);
                    }
                    http::write_last_chunk(&mut conn.out);
                } else if let Some(b) = &body {
                    http::write_response(&mut conn.out, 200, &[("x-ce-cache", waiter.note)], b);
                }
            } else {
                // ce:ordering(monotone telemetry counter; readers tolerate skew)
                metrics.errors.fetch_add(1, Ordering::Relaxed);
                if waiter.header_written {
                    // The 200 chunked head already went out; the only
                    // honest signal left is a truncated stream.
                    self.close_conn(waiter.slot);
                    continue;
                }
                let fallback = error_body("internal computation failure");
                let b = body.as_deref().unwrap_or(fallback.as_str());
                http::write_response(&mut conn.out, status, &[("x-ce-cache", waiter.note)], b);
            }
            let micros =
                u64::try_from(now.duration_since(waiter.started).as_micros()).unwrap_or(u64::MAX);
            metrics.record_latency_micros(micros);
            if let Some(conn) = self.slab.get_mut(waiter.slot, waiter.generation) {
                if !conn.req_keep_alive {
                    conn.close_after_flush = true;
                }
            }
            self.dirty.push(waiter.slot);
        }
    }

    fn accept_ready(&mut self, now: Instant) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            // ce:allow(blocking, reason = "listener is in nonblocking mode; accept returns WouldBlock instead of parking")
            match listener.accept() {
                Ok((stream, _)) => {
                    // ce:ordering(best-effort admission cap; the counter publishes no memory, only a count)
                    let previous = self.shared.connections.fetch_add(1, Ordering::Relaxed);
                    if previous >= self.shared.config.max_connections as u64 {
                        // ce:ordering(undo of the optimistic increment above; same counter discipline)
                        self.shared.connections.fetch_sub(1, Ordering::Relaxed);
                        let mut refusal = Vec::new();
                        http::write_response(
                            &mut refusal,
                            503,
                            &[("connection", "close")],
                            "{\"error\":\"connection limit reached\"}",
                        );
                        let mut stream = stream;
                        let _ = stream.write_all(&refusal);
                        // ce:allow(blocking, reason = "TcpStream::shutdown, not ServerHandle::shutdown; a plain close syscall")
                        let _ = stream.shutdown(Shutdown::Both);
                        continue;
                    }
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    self.slab.insert(stream, now);
                    // ce:ordering(monotone telemetry counter; readers tolerate skew)
                    self.shard.stats.accepts.fetch_add(1, Ordering::Relaxed);
                    // ce:ordering(per-shard stats gauge; staleness is acceptable)
                    self.shard
                        .connections
                        .store(self.slab.occupied() as u64, Ordering::Relaxed);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn handle_readable(&mut self, slot: usize, now: Instant) {
        let Some(conn) = self.slab.slot_mut(slot) else {
            return;
        };
        // ce:allow(blocking, reason = "accepted streams are set nonblocking; reads return WouldBlock, never park")
        match conn.stream.read(&mut self.read_buf) {
            Ok(0) => conn.read_eof = true,
            Ok(n) => {
                conn.buf
                    .extend_from_slice(self.read_buf.get(..n).unwrap_or_default());
                conn.last_activity = now;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                self.close_conn(slot);
                return;
            }
        }
        let incomplete = self.process_conn(slot, now);
        if incomplete {
            self.shard
                // ce:ordering(monotone telemetry counter; readers tolerate skew)
                .stats
                .partial_reads
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Parses and dispatches every complete request buffered on `slot`,
    /// then compacts the input buffer and flushes output. Returns whether
    /// a partial request remains buffered.
    // ce:nonblocking
    fn process_conn(&mut self, slot: usize, now: Instant) -> bool {
        let mut incomplete = false;
        loop {
            let Some(conn) = self.slab.slot_mut(slot) else {
                return false;
            };
            if conn.awaiting.is_some() || conn.close_after_flush {
                break;
            }
            if conn.out.len() - conn.out_pos > OUT_HIGH_WATER {
                break; // backpressure: stop producing until the peer drains
            }
            if conn.head.is_none() {
                match http::find_head_end(&conn.buf, &mut conn.scan) {
                    Some(end) => {
                        let head_bytes = conn.buf.get(conn.pos..end).unwrap_or_default();
                        let head = match http::parse_head(head_bytes) {
                            Ok(head) => head,
                            Err((status, message)) => {
                                self.reject_and_close(slot, status, message);
                                break;
                            }
                        };
                        if head.content_length > self.shared.config.max_body_bytes {
                            // 413 at head-parse time: the oversized body
                            // is never buffered, the connection closes.
                            self.reject_and_close(slot, 413, "request body too large");
                            break;
                        }
                        let Some(conn) = self.slab.slot_mut(slot) else {
                            return false;
                        };
                        conn.head = Some(head);
                    }
                    None => {
                        if conn.buf.len() - conn.pos > http::MAX_HEAD_BYTES {
                            self.reject_and_close(slot, 400, "request head too large");
                            break;
                        }
                        incomplete = conn.buf.len() > conn.pos;
                        break;
                    }
                }
                continue;
            }
            let Some((head_len, content_length)) = conn
                .head
                .as_ref()
                .map(|head| (head.head_len, head.content_length))
            else {
                break; // unreachable: the arm above just set it
            };
            let body_start = conn.pos + head_len;
            let body_end = body_start + content_length;
            if conn.buf.len() < body_end {
                incomplete = true;
                break;
            }
            let Some(head) = conn.head.take() else {
                break;
            };
            conn.req_keep_alive = head.keep_alive;
            self.body.clear();
            self.body
                .extend_from_slice(conn.buf.get(body_start..body_end).unwrap_or_default());
            conn.pos = body_end;
            conn.scan = body_end;
            let keep_alive = head.keep_alive;
            self.dispatch(slot, &head, now);
            if !keep_alive {
                if let Some(conn) = self.slab.slot_mut(slot) {
                    conn.close_after_flush = true;
                }
                break;
            }
        }
        if let Some(conn) = self.slab.slot_mut(slot) {
            if conn.pos > 0 {
                // One compaction per event, however many pipelined
                // requests were consumed above.
                conn.buf.copy_within(conn.pos.., 0);
                let live = conn.buf.len() - conn.pos;
                conn.buf.truncate(live);
                conn.scan -= conn.pos;
                conn.pos = 0;
            }
        }
        self.try_flush(slot, now);
        if let Some(conn) = self.slab.slot_mut(slot) {
            if conn.read_eof && conn.awaiting.is_none() {
                if conn.out_pending() {
                    conn.close_after_flush = true;
                } else {
                    self.close_conn(slot);
                }
            }
        }
        incomplete
    }

    /// Routes one complete request. `self.body` holds its body bytes.
    fn dispatch(&mut self, slot: usize, head: &Head, now: Instant) {
        let Some(target) = head.target else {
            self.respond_error(slot, None, 404, "no such endpoint", now);
            return;
        };
        if head.method != target.method() {
            self.respond_error(slot, None, 405, "method not allowed", now);
            return;
        }
        match target {
            Target::Healthz => {
                self.respond_ok(slot, Endpoint::Healthz, "{\"status\":\"ok\"}", now);
            }
            Target::Stats => {
                let body = stats_json(&self.shared).encode();
                self.respond_ok(slot, Endpoint::Stats, &body, now);
            }
            Target::Scenarios => {
                let body = Arc::clone(&self.shared.scenarios);
                self.respond_ok(slot, Endpoint::Scenarios, &body, now);
            }
            Target::Manifest => {
                self.shared
                    .metrics
                    // ce:ordering(monotone telemetry counter; readers tolerate skew)
                    .endpoint(Endpoint::Manifest)
                    .requests
                    .fetch_add(1, Ordering::Relaxed);
                let found = head
                    .manifest_hash
                    .as_deref()
                    .and_then(|hash| self.shared.manifests.get(hash));
                match found {
                    Some(body) => {
                        self.respond_with(slot, Some(Endpoint::Manifest), 200, &[], &body, now);
                    }
                    None => self.respond_status(
                        slot,
                        Endpoint::Manifest,
                        404,
                        "no manifest registered under that result hash",
                        now,
                    ),
                }
            }
            Target::Evaluate | Target::Explore | Target::Optimal => {
                if let Some((kind, endpoint)) = kind_endpoint(target) {
                    self.compute(slot, kind, endpoint, now);
                }
            }
        }
    }

    /// The compute path: raw-bytes memo → response cache → coalesce →
    /// enqueue. The memo makes the hot repeat-request path parse-free.
    fn compute(&mut self, slot: usize, kind: ComputeKind, endpoint: Endpoint, now: Instant) {
        let shared = Arc::clone(&self.shared);
        let metrics = shared.metrics.endpoint(endpoint);
        // ce:ordering(monotone telemetry counter; readers tolerate skew)
        metrics.requests.fetch_add(1, Ordering::Relaxed);
        let hash = memo_hash(kind, &self.body);
        let key: Arc<str> = match self.memo.get(hash, kind, &self.body) {
            Some((key, _)) => Arc::clone(key),
            None => {
                let parsed = {
                    let Ok(text) = std::str::from_utf8(&self.body) else {
                        self.respond_status(slot, endpoint, 400, "body must be UTF-8", now);
                        return;
                    };
                    let json = match Json::parse(text) {
                        Ok(json) => json,
                        Err(e) => {
                            let message = format!("invalid JSON: {e}");
                            self.respond_status(slot, endpoint, 400, &message, now);
                            return;
                        }
                    };
                    match ComputeRequest::parse(kind, &json, &self.shared.config.limits) {
                        Ok(parsed) => parsed,
                        Err(RequestError { status, message }) => {
                            self.respond_status(slot, endpoint, status, &message, now);
                            return;
                        }
                    }
                };
                let key: Arc<str> = Arc::from(parsed.canonical_key().as_str());
                self.memo
                    .insert(hash, self.body.clone(), Arc::clone(&key), parsed);
                key
            }
        };

        if let Some(cached) = self.cache.get(&key) {
            // ce:ordering(monotone telemetry counter; readers tolerate skew)
            self.shard.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            // ce:ordering(monotone telemetry counter; readers tolerate skew)
            metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            let Some(conn) = self.slab.slot_mut(slot) else {
                return;
            };
            match &cached {
                CachedBody::Full(body) => {
                    http::write_response(&mut conn.out, 200, &[("x-ce-cache", "hit")], body);
                }
                CachedBody::Chunked(fragments) => {
                    // Replay with the original fragment boundaries: the
                    // wire bytes match the fresh streamed response.
                    http::write_chunked_head(&mut conn.out, 200, &[("x-ce-cache", "hit")]);
                    for fragment in fragments.iter() {
                        http::write_chunk(&mut conn.out, fragment);
                    }
                    http::write_last_chunk(&mut conn.out);
                    // ce:ordering(monotone telemetry counter; readers tolerate skew)
                    self.shard.stats.streamed.fetch_add(1, Ordering::Relaxed);
                }
            }
            let micros = u64::try_from(now.elapsed().as_micros()).unwrap_or(u64::MAX);
            metrics.record_latency_micros(micros);
            return;
        }
        self.shard
            .stats
            .cache_misses
            // ce:ordering(monotone telemetry counter; readers tolerate skew)
            .fetch_add(1, Ordering::Relaxed);

        if let Some(entry) = self.inflight.get_mut(&key) {
            // ce:ordering(monotone telemetry counter; readers tolerate skew)
            metrics.coalesced.fetch_add(1, Ordering::Relaxed);
            let Some(conn) = self.slab.slot_mut(slot) else {
                return;
            };
            entry.waiters.push(Waiter {
                slot,
                generation: conn.generation,
                started: now,
                note: "coalesced",
                sent_chunks: 0,
                header_written: false,
            });
            conn.awaiting = Some(key);
            return;
        }

        // Re-fetch rather than clone eagerly: the memo entry was inserted
        // (or matched) above, so this only misses if eviction raced it —
        // impossible single-threaded, but degrade to a 500, not a panic.
        let Some(request) = self
            .memo
            .get(hash, kind, &self.body)
            .map(|(_, r)| r.clone())
        else {
            self.respond_status(
                slot,
                endpoint,
                500,
                "request memo evicted mid-dispatch",
                now,
            );
            return;
        };
        let stream = request
            .explore_points()
            .is_some_and(|points| points >= self.shared.config.stream_threshold_points);
        // ce:allow(blocking, reason = "try_push never waits; its queue critical section is a bounded len check + push_back")
        match self.shard.queue.try_push(Job {
            key: Arc::clone(&key),
            request,
            stream,
        }) {
            Ok(()) => {
                let generation = match self.slab.slot_mut(slot) {
                    Some(conn) => {
                        conn.awaiting = Some(Arc::clone(&key));
                        conn.generation
                    }
                    None => return,
                };
                self.inflight.insert(
                    key,
                    Inflight {
                        endpoint,
                        started: now,
                        chunks: Vec::new(),
                        waiters: vec![Waiter {
                            slot,
                            generation,
                            started: now,
                            note: "miss",
                            sent_chunks: 0,
                            header_written: false,
                        }],
                    },
                );
                self.publish_inflight_gauge();
            }
            Err(crate::queue::PushError::Full) => {
                // ce:ordering(monotone telemetry counter; readers tolerate skew)
                metrics.shed.fetch_add(1, Ordering::Relaxed);
                self.respond_with(
                    slot,
                    Some(endpoint),
                    429,
                    &[("retry-after", "1")],
                    &error_body("compute queue full; retry shortly"),
                    now,
                );
            }
            Err(crate::queue::PushError::Closed) => {
                self.respond_status(slot, endpoint, 503, "server is shutting down", now);
            }
        }
    }

    fn respond_ok(&mut self, slot: usize, endpoint: Endpoint, body: &str, now: Instant) {
        let metrics = self.shared.metrics.endpoint(endpoint);
        // ce:ordering(monotone telemetry counter; readers tolerate skew)
        metrics.requests.fetch_add(1, Ordering::Relaxed);
        self.respond_with(slot, Some(endpoint), 200, &[], body, now);
    }

    /// An error on a known compute endpoint (requests already counted).
    fn respond_status(
        &mut self,
        slot: usize,
        endpoint: Endpoint,
        status: u16,
        message: &str,
        now: Instant,
    ) {
        let body = error_body(message);
        self.respond_with(slot, Some(endpoint), status, &[], &body, now);
    }

    /// An error outside any endpoint's metrics (404/405, like the
    /// thread-per-connection server before it).
    fn respond_error(
        &mut self,
        slot: usize,
        endpoint: Option<Endpoint>,
        status: u16,
        message: &str,
        now: Instant,
    ) {
        let body = error_body(message);
        self.respond_with(slot, endpoint, status, &[], &body, now);
    }

    fn respond_with(
        &mut self,
        slot: usize,
        endpoint: Option<Endpoint>,
        status: u16,
        extra_headers: &[(&str, &str)],
        body: &str,
        now: Instant,
    ) {
        if let Some(endpoint) = endpoint {
            let metrics = self.shared.metrics.endpoint(endpoint);
            if status >= 400 {
                // ce:ordering(monotone telemetry counter; readers tolerate skew)
                metrics.errors.fetch_add(1, Ordering::Relaxed);
            }
            let micros = u64::try_from(now.elapsed().as_micros()).unwrap_or(u64::MAX);
            metrics.record_latency_micros(micros);
        }
        let Some(conn) = self.slab.slot_mut(slot) else {
            return;
        };
        http::write_response(&mut conn.out, status, extra_headers, body);
    }

    /// A protocol-level rejection: answer and close (the input stream is
    /// no longer trustworthy or wanted).
    fn reject_and_close(&mut self, slot: usize, status: u16, message: &str) {
        let Some(conn) = self.slab.slot_mut(slot) else {
            return;
        };
        let body = error_body(message);
        http::write_response(&mut conn.out, status, &[("connection", "close")], &body);
        conn.close_after_flush = true;
    }

    fn try_flush(&mut self, slot: usize, now: Instant) {
        let mut close = false;
        {
            let Some(conn) = self.slab.slot_mut(slot) else {
                return;
            };
            while conn.out_pos < conn.out.len() {
                let pending = conn.out.get(conn.out_pos..).unwrap_or_default();
                match conn.stream.write(pending) {
                    Ok(0) => {
                        close = true;
                        break;
                    }
                    Ok(n) => {
                        conn.out_pos += n;
                        conn.last_activity = now;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        self.shard
                            .stats
                            .short_writes
                            // ce:ordering(monotone telemetry counter; readers tolerate skew)
                            .fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        close = true;
                        break;
                    }
                }
            }
            if !close {
                if conn.out_pos == conn.out.len() {
                    conn.out.clear();
                    conn.out_pos = 0;
                    // A `connection: close` request may still be awaiting
                    // its computation with nothing buffered yet; only an
                    // answered-and-drained connection actually closes.
                    close = conn.close_after_flush && conn.awaiting.is_none();
                } else if conn.out_pos > OUT_COMPACT {
                    conn.out.copy_within(conn.out_pos.., 0);
                    let live = conn.out.len() - conn.out_pos;
                    conn.out.truncate(live);
                    conn.out_pos = 0;
                }
            }
        }
        if close {
            self.close_conn(slot);
        }
    }

    fn close_conn(&mut self, slot: usize) {
        let Some(conn) = self.slab.remove(slot) else {
            return;
        };
        if let Some(key) = &conn.awaiting {
            if let Some(entry) = self.inflight.get_mut(key) {
                entry
                    .waiters
                    .retain(|w| w.slot != slot || w.generation != conn.generation);
            }
        }
        // ce:allow(blocking, reason = "TcpStream::shutdown, not ServerHandle::shutdown; a plain close syscall")
        let _ = conn.stream.shutdown(Shutdown::Both);
        // ce:ordering(admission counter decrement; publishes no memory, only a count)
        self.shared.connections.fetch_sub(1, Ordering::Relaxed);
        // ce:ordering(per-shard stats gauge; staleness is acceptable)
        self.shard
            .connections
            .store(self.slab.occupied() as u64, Ordering::Relaxed);
    }

    /// The deadline sweep: slow-loris 408s, idle keep-alive closes,
    /// write-stall closes, and compute-timeout 504s.
    // ce:nonblocking
    fn sweep(&mut self, now: Instant) {
        let read_timeout = self.shared.config.read_timeout;
        let idle_timeout = self.shared.config.idle_timeout;
        let compute_timeout = self.shared.config.compute_timeout;

        let mut stalled: Vec<usize> = Vec::new();
        let mut idle: Vec<usize> = Vec::new();
        for (slot, conn) in self.slab.iter() {
            if conn.awaiting.is_some() {
                continue; // the compute-timeout pass below covers these
            }
            let quiet = now.duration_since(conn.last_activity);
            if conn.out_pending() {
                if quiet >= read_timeout {
                    idle.push(slot); // write-stalled peer: close
                }
            } else if conn.mid_request() && !conn.close_after_flush {
                if quiet >= read_timeout {
                    stalled.push(slot); // slow-loris: 408 and close
                }
            } else if quiet >= idle_timeout {
                idle.push(slot);
            }
        }
        for slot in stalled {
            self.reject_and_close(slot, 408, "request read timed out");
            self.try_flush(slot, now);
        }
        for slot in idle {
            self.close_conn(slot);
        }

        let mut expired: Vec<(Endpoint, Vec<Waiter>)> = Vec::new();
        for entry in self.inflight.values_mut() {
            if !entry.waiters.is_empty() && now.duration_since(entry.started) >= compute_timeout {
                // The computation may still finish (and fill the cache);
                // only the waiters give up.
                expired.push((entry.endpoint, std::mem::take(&mut entry.waiters)));
            }
        }
        for (endpoint, waiters) in expired {
            for waiter in waiters {
                let Some(conn) = self.slab.get_mut(waiter.slot, waiter.generation) else {
                    continue;
                };
                conn.awaiting = None;
                if waiter.header_written {
                    self.close_conn(waiter.slot);
                    continue;
                }
                self.respond_status(waiter.slot, endpoint, 504, "computation timed out", now);
                if let Some(conn) = self.slab.get_mut(waiter.slot, waiter.generation) {
                    if !conn.req_keep_alive {
                        conn.close_after_flush = true;
                    }
                }
                self.process_conn(waiter.slot, now);
            }
        }
    }

    /// During shutdown: close connections with nothing left to deliver.
    fn close_drained_for_shutdown(&mut self) {
        let drained: Vec<usize> = self
            .slab
            .iter()
            .filter(|(_, conn)| conn.awaiting.is_none() && !conn.out_pending())
            .map(|(slot, _)| slot)
            .collect();
        for slot in drained {
            self.close_conn(slot);
        }
        let flushing: Vec<usize> = self
            .slab
            .iter()
            .filter(|(_, conn)| conn.out_pending())
            .map(|(slot, _)| slot)
            .collect();
        for slot in flushing {
            let now = Instant::now();
            self.try_flush(slot, now);
        }
    }

    fn publish_inflight_gauge(&self) {
        // ce:ordering(stats gauge shadow of loop-local state; staleness is acceptable)
        self.shard
            .inflight_keys
            .store(self.inflight.len() as u64, Ordering::Relaxed);
    }

    fn publish_cache_gauge(&self) {
        // ce:ordering(stats gauge shadow of loop-local state; staleness is acceptable)
        self.shard
            .cache_entries
            .store(self.cache.len() as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn loopback_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let tx = TcpStream::connect(addr).expect("connect");
        let (rx, _) = listener.accept().expect("accept");
        (tx, rx)
    }

    #[test]
    fn waker_coalesces_until_rearmed() {
        let (tx, mut rx) = loopback_pair();
        rx.set_nonblocking(true).expect("nonblocking");
        let waker = Waker::new(tx);
        waker.wake();
        waker.wake();
        waker.wake();
        let mut buf = [0u8; 16];
        let n = rx.read(&mut buf).expect("one byte");
        assert_eq!(n, 1, "coalesced to a single byte");
        waker.rearm();
        waker.wake();
        let n = rx.read(&mut buf).expect("fresh byte after rearm");
        assert_eq!(n, 1);
    }

    #[test]
    fn slab_generations_invalidate_reused_slots() {
        let mut slab = Slab::new();
        let now = Instant::now();
        let (a, _keep_a) = loopback_pair();
        let (b, _keep_b) = loopback_pair();
        let slot = slab.insert(a, now);
        let generation = slab.slot_mut(slot).expect("present").generation;
        assert!(slab.get_mut(slot, generation).is_some());
        slab.remove(slot);
        assert!(slab.get_mut(slot, generation).is_none());
        let reused = slab.insert(b, now);
        assert_eq!(reused, slot, "slot reused");
        assert!(
            slab.get_mut(slot, generation).is_none(),
            "stale generation rejected"
        );
        assert_eq!(slab.occupied(), 1);
    }

    #[test]
    fn memo_hash_separates_kinds() {
        let body = br#"{"site":"UT"}"#;
        let a = memo_hash(ComputeKind::Evaluate, body);
        let b = memo_hash(ComputeKind::Explore, body);
        let c = memo_hash(ComputeKind::Optimal, body);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(a, memo_hash(ComputeKind::Evaluate, body));
    }
}
