//! A hand-rolled FxHash-style string hasher.
//!
//! Canonical scenario keys (see [`crate::request`]) are hashed to pick a
//! cache shard. The hasher is a fixed, seedless multiply-rotate mix — the
//! same family rustc uses internally — so the shard assignment of a key is
//! identical on every run and every platform. The hash is **not** the
//! cache's identity (the canonical string is; collisions merely co-locate
//! two keys in one shard), so its only requirements are determinism and a
//! reasonable spread.

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[inline]
fn mix(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(SEED)
}

/// Hashes a byte slice. Deterministic across runs, processes, and
/// platforms (bytes are folded little-endian in 8-byte words).
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut hash = 0u64;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let mut word = [0u8; 8];
        word.copy_from_slice(chunk);
        hash = mix(hash, u64::from_le_bytes(word));
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut word = [0u8; 8];
        word[..tail.len()].copy_from_slice(tail);
        hash = mix(hash, u64::from_le_bytes(word));
    }
    // Fold the length in so prefixes of zero bytes don't collide.
    mix(hash, bytes.len() as u64)
}

/// Hashes a string (its UTF-8 bytes).
pub fn hash_str(s: &str) -> u64 {
    hash_bytes(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_length_sensitive() {
        assert_eq!(hash_str("evaluate;site=UT"), hash_str("evaluate;site=UT"));
        assert_ne!(hash_str(""), hash_str("\0"));
        assert_ne!(hash_str("\0"), hash_str("\0\0"));
        assert_ne!(hash_str("abc"), hash_str("abd"));
    }

    #[test]
    fn spreads_across_high_bits() {
        // Shard selection uses the high bits; check that near-identical
        // keys do not all land in one shard.
        let mut shards = std::collections::BTreeSet::new();
        for i in 0..64 {
            let h = hash_str(&format!("evaluate;site=UT;seed={i}"));
            shards.insert(h >> 60);
        }
        assert!(shards.len() > 4, "only {} distinct shards", shards.len());
    }

    #[test]
    fn empty_input_hashes_stably() {
        assert_eq!(hash_bytes(&[]), hash_bytes(&[]));
        assert_eq!(hash_bytes(b"x"), hash_str("x"));
    }
}
