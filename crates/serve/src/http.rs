//! Incremental HTTP/1.1 request parsing and response framing.
//!
//! The parser is built for a readiness loop: it consumes whatever bytes
//! have arrived so far and reports `NeedMore` without losing progress —
//! [`find_head_end`] resumes its `\r\n\r\n` scan from a caller-held
//! offset (with a 3-byte overlap for terminators split across reads), so
//! a request delivered one byte at a time costs `O(n)` total, not
//! `O(n²)`.
//!
//! Framing is the writing half: responses are appended to a connection's
//! output buffer either with `content-length` ([`write_response`]) or as
//! `transfer-encoding: chunked` ([`write_chunked_head`] /
//! [`write_chunk`] / [`write_last_chunk`]) for streamed `/explore`
//! bodies. Chunk boundaries are part of the cached representation, so a
//! replayed chunked response is byte-identical on the wire to the fresh
//! one.

/// Maximum bytes of a request head (request line + headers) before the
/// connection is rejected.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Request method, as far as routing cares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET`.
    Get,
    /// `POST`.
    Post,
    /// Anything else (always answered 405 on known paths).
    Other,
}

/// A routable path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// `GET /healthz`.
    Healthz,
    /// `GET /stats`.
    Stats,
    /// `GET /scenarios`.
    Scenarios,
    /// `GET /manifest/<result_hash>` (the hash travels in
    /// [`Head::manifest_hash`]).
    Manifest,
    /// `POST /evaluate`.
    Evaluate,
    /// `POST /explore`.
    Explore,
    /// `POST /optimal`.
    Optimal,
}

impl Target {
    /// The method this path serves.
    pub fn method(self) -> Method {
        match self {
            Target::Healthz | Target::Stats | Target::Scenarios | Target::Manifest => Method::Get,
            Target::Evaluate | Target::Explore | Target::Optimal => Method::Post,
        }
    }

    fn from_path(path: &str) -> Option<Target> {
        Some(match path {
            "/healthz" => Target::Healthz,
            "/stats" => Target::Stats,
            "/scenarios" => Target::Scenarios,
            "/evaluate" => Target::Evaluate,
            "/explore" => Target::Explore,
            "/optimal" => Target::Optimal,
            _ => return None,
        })
    }
}

/// A parsed request head, body not yet (necessarily) arrived.
#[derive(Debug, Clone)]
pub struct Head {
    /// Request method.
    pub method: Method,
    /// The routed path; `None` is a 404.
    pub target: Option<Target>,
    /// Whether the connection persists after this exchange.
    pub keep_alive: bool,
    /// Declared body length (0 when absent).
    pub content_length: usize,
    /// Bytes the head occupied, including the `\r\n\r\n` terminator.
    pub head_len: usize,
    /// The `<result_hash>` path segment of a [`Target::Manifest`]
    /// request; `None` for every other target.
    pub manifest_hash: Option<String>,
}

/// Searches `buf[*scan..]` for the `\r\n\r\n` head terminator, returning
/// the index one past it. On failure, rewinds `*scan` to `len - 3` so the
/// next call re-examines only bytes that could complete a terminator
/// split across reads.
pub fn find_head_end(buf: &[u8], scan: &mut usize) -> Option<usize> {
    let start = *scan;
    if let Some(pos) = buf
        .get(start..)
        .unwrap_or_default()
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + start)
    {
        *scan = pos + 4;
        return Some(pos + 4);
    }
    *scan = buf.len().saturating_sub(3).max(start);
    None
}

/// Parses a complete request head (`head_bytes` runs up to and including
/// the blank line).
///
/// # Errors
///
/// `(status, message)` — always 400 here; the caller turns an oversized
/// `content_length` into 413 because that check needs its config.
pub fn parse_head(head_bytes: &[u8]) -> Result<Head, (u16, &'static str)> {
    let head_len = head_bytes.len();
    let text = std::str::from_utf8(head_bytes).map_err(|_| (400, "non-UTF-8 request head"))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method_token = parts.next().unwrap_or("");
    let raw_path = parts.next().unwrap_or("");
    let path = raw_path.split('?').next().unwrap_or("");
    let version = parts.next().unwrap_or("");
    if method_token.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err((400, "malformed request line"));
    }
    let method = match method_token {
        "GET" => Method::Get,
        "POST" => Method::Post,
        _ => Method::Other,
    };
    let mut content_length = 0usize;
    let mut keep_alive = version != "HTTP/1.0";
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value.parse().map_err(|_| (400, "bad content-length"))?;
        } else if name.trim().eq_ignore_ascii_case("connection") {
            let value = value.to_ascii_lowercase();
            if value.split(',').any(|t| t.trim() == "close") {
                keep_alive = false;
            } else if value.split(',').any(|t| t.trim() == "keep-alive") {
                keep_alive = true;
            }
        }
    }
    // `/manifest/<hash>` is the one dynamic route: the trailing segment
    // is a content address, not an enumerable path.
    let (target, manifest_hash) = match path.strip_prefix("/manifest/") {
        Some(hash) if !hash.is_empty() && !hash.contains('/') => {
            (Some(Target::Manifest), Some(hash.to_string()))
        }
        _ => (Target::from_path(path), None),
    };
    Ok(Head {
        method,
        target,
        keep_alive,
        content_length,
        head_len,
        manifest_hash,
    })
}

/// The reason phrase for every status this server produces.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Error",
    }
}

fn push_head_line(out: &mut Vec<u8>, status: u16, extra_headers: &[(&str, &str)]) {
    out.extend_from_slice(b"HTTP/1.1 ");
    let digits = [
        b'0' + (status / 100 % 10) as u8,
        b'0' + (status / 10 % 10) as u8,
        b'0' + (status % 10) as u8,
    ];
    out.extend_from_slice(&digits);
    out.push(b' ');
    out.extend_from_slice(status_reason(status).as_bytes());
    out.extend_from_slice(b"\r\ncontent-type: application/json\r\n");
    for (name, value) in extra_headers {
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
}

/// Appends a full `content-length`-framed response.
pub fn write_response(out: &mut Vec<u8>, status: u16, extra_headers: &[(&str, &str)], body: &str) {
    push_head_line(out, status, extra_headers);
    out.extend_from_slice(b"content-length: ");
    let mut buf = itoa(body.len());
    out.append(&mut buf);
    out.extend_from_slice(b"\r\n\r\n");
    out.extend_from_slice(body.as_bytes());
}

/// Appends the head of a `transfer-encoding: chunked` response; the body
/// follows via [`write_chunk`] and ends with [`write_last_chunk`].
pub fn write_chunked_head(out: &mut Vec<u8>, status: u16, extra_headers: &[(&str, &str)]) {
    push_head_line(out, status, extra_headers);
    out.extend_from_slice(b"transfer-encoding: chunked\r\n\r\n");
}

/// Appends one HTTP chunk (`{len:x}\r\n{data}\r\n`). Empty fragments are
/// skipped — a zero-length chunk would terminate the body.
pub fn write_chunk(out: &mut Vec<u8>, data: &str) {
    if data.is_empty() {
        return;
    }
    let mut len = hex(data.len());
    out.append(&mut len);
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(data.as_bytes());
    out.extend_from_slice(b"\r\n");
}

/// Appends the terminating zero-length chunk.
pub fn write_last_chunk(out: &mut Vec<u8>) {
    out.extend_from_slice(b"0\r\n\r\n");
}

fn itoa(mut n: usize) -> Vec<u8> {
    if n == 0 {
        return vec![b'0'];
    }
    let mut digits = Vec::with_capacity(20);
    while n > 0 {
        digits.push(b'0' + (n % 10) as u8);
        n /= 10;
    }
    digits.reverse();
    digits
}

fn hex(mut n: usize) -> Vec<u8> {
    if n == 0 {
        return vec![b'0'];
    }
    let mut digits = Vec::with_capacity(16);
    while n > 0 {
        let d = (n % 16) as u8;
        digits.push(if d < 10 { b'0' + d } else { b'a' + d - 10 });
        n /= 16;
    }
    digits.reverse();
    digits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_scan_resumes_across_partial_reads() {
        let full = b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\nrest";
        // Feed one byte at a time; the scan offset must never re-examine
        // more than a 3-byte overlap.
        let mut buf = Vec::new();
        let mut scan = 0usize;
        let mut found = None;
        for (i, &b) in full.iter().enumerate() {
            buf.push(b);
            if let Some(end) = find_head_end(&buf, &mut scan) {
                found = Some((i, end));
                break;
            }
            assert!(scan + 3 >= buf.len(), "scan {scan} lags buf {}", buf.len());
        }
        let (at, end) = found.expect("terminator found");
        assert_eq!(end, full.len() - 4);
        assert_eq!(at, full.len() - 5); // found on the final '\n' of the blank line
    }

    #[test]
    fn parse_head_extracts_routing_fields() {
        let head = parse_head(
            b"POST /evaluate?x=1 HTTP/1.1\r\ncontent-length: 42\r\nConnection: close\r\n\r\n",
        )
        .expect("parses");
        assert_eq!(head.method, Method::Post);
        assert_eq!(head.target, Some(Target::Evaluate));
        assert_eq!(head.content_length, 42);
        assert!(!head.keep_alive);
        let head = parse_head(b"GET /stats HTTP/1.1\r\n\r\n").expect("parses");
        assert_eq!(head.target, Some(Target::Stats));
        assert!(head.keep_alive, "HTTP/1.1 defaults to keep-alive");
        let head = parse_head(b"GET /stats HTTP/1.0\r\n\r\n").expect("parses");
        assert!(!head.keep_alive, "HTTP/1.0 defaults to close");
        let head = parse_head(b"PUT /nope HTTP/1.1\r\n\r\n").expect("parses");
        assert_eq!(head.method, Method::Other);
        assert_eq!(head.target, None);
    }

    #[test]
    fn manifest_route_captures_the_hash_segment() {
        let head = parse_head(b"GET /manifest/ab12cd HTTP/1.1\r\n\r\n").expect("parses");
        assert_eq!(head.target, Some(Target::Manifest));
        assert_eq!(head.manifest_hash.as_deref(), Some("ab12cd"));
        assert_eq!(Target::Manifest.method(), Method::Get);
        // Bare, empty, and nested paths are not the manifest route.
        for path in [
            &b"GET /manifest HTTP/1.1\r\n\r\n"[..],
            b"GET /manifest/ HTTP/1.1\r\n\r\n",
            b"GET /manifest/a/b HTTP/1.1\r\n\r\n",
        ] {
            let head = parse_head(path).expect("parses");
            assert_eq!(head.target, None, "{}", String::from_utf8_lossy(path));
            assert_eq!(head.manifest_hash, None);
        }
        // Query strings are stripped before routing, like every route.
        let head = parse_head(b"GET /manifest/ff00?pretty=1 HTTP/1.1\r\n\r\n").expect("parses");
        assert_eq!(head.manifest_hash.as_deref(), Some("ff00"));
    }

    #[test]
    fn parse_head_rejects_malformed_lines() {
        for bad in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /x SPDY/3\r\n\r\n",
            b"GET  HTTP/1.1\r\n\r\n",
            b"POST /evaluate HTTP/1.1\r\ncontent-length: banana\r\n\r\n",
            b"\xff\xfe\r\n\r\n",
        ] {
            assert!(parse_head(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn response_framing_matches_handwritten_bytes() {
        let mut out = Vec::new();
        write_response(&mut out, 200, &[("x-ce-cache", "hit")], "{\"a\":1}");
        let expected = "HTTP/1.1 200 OK\r\ncontent-type: application/json\r\nx-ce-cache: hit\r\ncontent-length: 7\r\n\r\n{\"a\":1}";
        assert_eq!(out, expected.as_bytes());
    }

    #[test]
    fn chunked_framing_round_trips() {
        let mut out = Vec::new();
        write_chunked_head(&mut out, 200, &[]);
        write_chunk(&mut out, "hello ");
        write_chunk(&mut out, ""); // skipped, not a terminator
        write_chunk(&mut out, &"x".repeat(26));
        write_last_chunk(&mut out);
        let text = String::from_utf8(out).expect("utf8");
        let (head, body) = text.split_once("\r\n\r\n").expect("split");
        assert!(head.contains("transfer-encoding: chunked"));
        assert!(!head.contains("content-length"));
        assert_eq!(
            body,
            format!("6\r\nhello \r\n1a\r\n{}\r\n0\r\n\r\n", "x".repeat(26))
        );
    }

    #[test]
    fn every_produced_status_has_a_reason() {
        for status in [200, 400, 404, 405, 408, 413, 422, 429, 500, 503, 504] {
            assert_ne!(status_reason(status), "Error", "{status}");
        }
        assert_eq!(status_reason(418), "Error");
    }
}
