//! Minimal JSON tree, recursive-descent parser, and deterministic encoder.
//!
//! The workspace builds with no crates.io access (the vendored `serde`
//! stand-in has no `serde_json` companion), so `ce-serve` carries its own
//! JSON layer. It is deliberately small: a [`Json`] tree, [`Json::parse`],
//! and [`Json::encode`].
//!
//! # Determinism contract
//!
//! [`Json::encode`] is byte-deterministic: object fields are emitted in
//! insertion order, no whitespace is produced, and numbers render through
//! Rust's shortest-round-trip `{}` formatting of `f64`. Encoding the same
//! tree always yields the same bytes, which is what lets the response
//! cache hand back stored bodies that are bitwise identical to a fresh
//! computation.
//!
//! Non-finite numbers have no JSON spelling; they encode as `null` (the
//! engine never produces them — this is a guard, not a feature).

use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;

/// Maximum nesting depth [`Json::parse`] accepts before rejecting the
/// document; guards the recursive parser against stack exhaustion from
/// adversarial inputs like `[[[[…`.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Field order is preserved — it is the encoding order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub pos: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.pos)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from `(key, value)` pairs (keys copied to owned
    /// strings). Purely a readability helper for response builders.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Builds a string value.
    pub fn string(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Field lookup on objects; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Encodes the tree compactly (no whitespace, fields in insertion
    /// order). See the module docs for the determinism contract.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write_to(&mut out);
        out
    }

    /// Encodes directly into a shared immutable string, the form the
    /// response cache stores.
    pub fn encode_arc(&self) -> Arc<str> {
        Arc::from(self.encode().as_str())
    }

    fn write_to(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_to(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write_to(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. The whole input must be one value (plus
    /// surrounding whitespace).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first problem:
    /// malformed syntax, nesting beyond [`MAX_DEPTH`], trailing garbage,
    /// unpaired surrogate escapes, or non-finite number literals.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

fn write_number(n: f64, out: &mut String) {
    if n.is_finite() {
        // Rust's `{}` for f64 is the shortest string that round-trips,
        // and it is deterministic — the contract the cache relies on.
        let _ = write!(out, "{n}");
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than MAX_DEPTH"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &'static [u8], value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected `{`")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:` after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the raw run up to the next quote, escape, or control
            // byte in one slice (the input is valid UTF-8, and the run
            // boundaries are ASCII, so the slice is too).
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(run);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: a `\uXXXX` low surrogate must follow.
                    if self.peek() != Some(b'\\') {
                        return Err(self.err("unpaired surrogate escape"));
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err(self.err("unpaired surrogate escape"));
                    }
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("unpaired surrogate escape"));
                } else {
                    hi
                };
                let c = char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?;
                out.push(c);
            }
            _ => return Err(self.err("invalid escape character")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = match c {
                b'0'..=b'9' => u32::from(c - b'0'),
                b'a'..=b'f' => u32::from(c - b'a') + 10,
                b'A'..=b'F' => u32::from(c - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = (v << 4) | digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !n.is_finite() {
            return Err(self.err("number overflows f64"));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> String {
        Json::parse(src).expect("parses").encode()
    }

    #[test]
    fn scalars_round_trip() {
        assert_eq!(roundtrip("null"), "null");
        assert_eq!(roundtrip("true"), "true");
        assert_eq!(roundtrip("false"), "false");
        assert_eq!(roundtrip("0"), "0");
        assert_eq!(roundtrip("-12.5"), "-12.5");
        assert_eq!(roundtrip("1e3"), "1000");
        assert_eq!(roundtrip("\"hi\""), "\"hi\"");
    }

    #[test]
    fn containers_round_trip_preserving_order() {
        assert_eq!(roundtrip("[1, 2, [3]]"), "[1,2,[3]]");
        assert_eq!(
            roundtrip("{ \"b\" : 1 , \"a\" : { \"x\" : [] } }"),
            "{\"b\":1,\"a\":{\"x\":[]}}"
        );
        assert_eq!(roundtrip("{}"), "{}");
        assert_eq!(roundtrip("[]"), "[]");
    }

    #[test]
    fn string_escapes_round_trip() {
        let parsed = Json::parse(r#""a\"b\\c\nd\u0041e\u00e9""#).expect("parses");
        assert_eq!(parsed.as_str(), Some("a\"b\\c\nd\u{41}e\u{e9}"));
        // Re-encoding produces a parseable equivalent.
        let again = Json::parse(&parsed.encode()).expect("reparses");
        assert_eq!(again, parsed);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let parsed = Json::parse(r#""\ud83d\ude00""#).expect("parses");
        assert_eq!(parsed.as_str(), Some("\u{1F600}"));
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\ude00""#).is_err());
        assert!(Json::parse(r#""\ud83d\u0041""#).is_err());
    }

    #[test]
    fn control_characters_escape_on_encode() {
        let encoded = Json::Str("\u{1}\t".to_string()).encode();
        assert_eq!(encoded, "\"\\u0001\\t\"");
        assert_eq!(
            Json::parse(&encoded).expect("parses").as_str(),
            Some("\u{1}\t")
        );
    }

    #[test]
    fn float_bits_survive_encode_parse() {
        for &v in &[
            0.1,
            1.0 / 3.0,
            123_456_789.123_456_78,
            f64::MIN_POSITIVE,
            -0.0,
            2.0_f64.powi(60),
        ] {
            let encoded = Json::Num(v).encode();
            let back = Json::parse(&encoded)
                .expect("parses")
                .as_f64()
                .expect("num");
            assert_eq!(back.to_bits(), v.to_bits(), "value {v} via {encoded}");
        }
    }

    #[test]
    fn non_finite_numbers_encode_as_null() {
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
        assert_eq!(Json::Num(f64::INFINITY).encode(), "null");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "01x",
            "1.",
            "1e",
            "\"\\q\"",
            "\"unterminated",
            "[1] extra",
            "nul",
            "+1",
            "--1",
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(MAX_DEPTH - 1) + &"]".repeat(MAX_DEPTH - 1);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a": 1, "b": "x", "c": [true], "d": null}"#).expect("parses");
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(
            v.get("c").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("a"), None);
        assert_eq!(v.as_object().map(<[(String, Json)]>::len), Some(4));
        assert_eq!(
            v.get("c")
                .and_then(Json::as_array)
                .and_then(|a| a.first())
                .and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn encode_arc_matches_encode() {
        let v = Json::obj(vec![("k", Json::Num(2.5))]);
        assert_eq!(&*v.encode_arc(), v.encode().as_str());
    }
}
