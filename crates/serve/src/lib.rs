//! `ce-serve`: a dependency-free HTTP query service over the Carbon
//! Explorer exploration engine.
//!
//! The crate turns the library's design-space exploration into a network
//! service using nothing but `std` and one `poll(2)` declaration
//! ([`sys`]): per-core event-loop shards running a nonblocking readiness
//! loop with incremental HTTP/1.1 parsing ([`http`], [`server`]), a
//! hand-rolled JSON layer ([`json`]), bounded per-shard job queues
//! feeding shard-pinned workers ([`queue`]), request coalescing plus a
//! shard-owned LRU response cache and a raw-bytes request memo keyed by
//! canonical scenario keys ([`request`], [`cache`], [`hash`]), streamed
//! `transfer-encoding: chunked` bodies for large `/explore` sweeps, and
//! per-endpoint and per-shard metrics ([`metrics`]).
//!
//! # Endpoints
//!
//! | endpoint | body | answer |
//! |---|---|---|
//! | `POST /evaluate` | context + `strategy` + `design` | one [`ce_core::EvaluatedDesign`] |
//! | `POST /explore` | context + `strategy` + `space` | every evaluation in the space |
//! | `POST /optimal` | context + `strategy` + `space` (+ `refine_rounds`) | the carbon-optimal design |
//! | `GET /healthz` | — | liveness (never queued) |
//! | `GET /stats` | — | counters, gauges, latency quantiles |
//! | `GET /scenarios` | — | scenario + strategy wire keys |
//! | `GET /manifest/<hash>` | — | the provenance manifest registered under a result hash |
//!
//! A *context* is `{"site": "UT"}` or `{"ba": "PACE", "demand_mw": 25}`,
//! plus optional `year` (default 2020) and `seed` (default 7).
//! `/evaluate` and `/explore` accept an optional `"manifest": true`,
//! which appends a [`ce_manifest::Manifest`] block to the response —
//! seed, year, balancing authority, strategy, code fingerprint, and the
//! canonical input/result hashes — and registers it for content-addressed
//! lookup at `GET /manifest/<result_hash>`.
//!
//! # Determinism contract
//!
//! Compute responses are **bitwise identical** to direct library calls —
//! whether computed fresh, replayed from the response cache, or shared
//! via coalescing — because bodies are encoded exactly once
//! ([`Json::encode`] is byte-deterministic) and cached/shared as
//! immutable `Arc<str>`. Streamed `/explore` bodies keep the contract:
//! the chunked fragments concatenate to exactly the buffered encoding,
//! and the fragment boundaries are cached so replays are byte-identical
//! *on the wire* too. Cache disposition travels in the `x-ce-cache`
//! header (`miss`/`hit`/`coalesced`), never in the body. The server's
//! *operational* behavior (timings, `/stats`, which requests coalesce) is
//! of course scheduling-dependent; `ce-serve` therefore holds an explicit
//! nondeterminism allowance for sockets, threads, wall-clock reads, and
//! raw fds in the workspace analyzer, mirroring `ce-bench`'s.
//!
//! # Quickstart
//!
//! ```
//! use ce_serve::{start, ServerConfig};
//! use std::io::{Read, Write};
//!
//! let handle = start(ServerConfig::default()).expect("bind");
//! let mut conn = std::net::TcpStream::connect(handle.addr()).expect("connect");
//! conn.write_all(b"GET /healthz HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n")
//!     .expect("request");
//! let mut reply = String::new();
//! conn.read_to_string(&mut reply).expect("response");
//! assert!(reply.starts_with("HTTP/1.1 200"));
//! assert!(reply.ends_with("{\"status\":\"ok\"}"));
//! handle.shutdown();
//! ```

// `deny` rather than `forbid`: the two narrowly scoped
// `#[allow(unsafe_code)]` blocks in [`sys`] (the `poll(2)` declaration
// and its call site) are the crate's entire unsafe surface.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod event;
pub mod hash;
pub mod http;
pub mod json;
pub mod metrics;
pub mod queue;
pub mod request;
pub mod server;
pub mod sys;

pub use json::{Json, JsonError};
pub use request::{
    build_explorer, evaluation_json, execute, execute_with_manifest, manifest_from_json,
    manifest_json, request_manifest, scenarios_json, ComputeKind, ComputeRequest, Context,
    DemandSource, ExplorerCache, Limits, ManifestStore, RequestError,
};
pub use server::{start, ServerConfig, ServerHandle};
