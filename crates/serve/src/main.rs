//! The `ce-serve` binary: boot the query service and run until killed.
//!
//! ```text
//! ce-serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N] [--shards N]
//! ```

use ce_serve::{start, ServerConfig};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str =
    "usage: ce-serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N] [--shards N]
  --addr     bind address (default 127.0.0.1:7878; port 0 picks a free port)
  --workers  compute worker threads (default 2; raised to the shard count)
  --queue    bounded job-queue capacity per shard (default 64)
  --cache    total response-cache capacity in entries (default 256)
  --shards   event-loop shards; 0 = one per core (binary default 0)";

fn parse_args(args: impl Iterator<Item = String>) -> Result<ServerConfig, String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".to_string(),
        // The binary defaults to one shard per core; the library default
        // stays 1 so embedded/test servers are fully deterministic.
        event_shards: 0,
        ..ServerConfig::default()
    };
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            return Err(USAGE.to_string());
        }
        let value = args
            .next()
            .ok_or_else(|| format!("missing value for `{flag}`\n{USAGE}"))?;
        let parse_count = |name: &str, v: &str| -> Result<usize, String> {
            v.parse::<usize>()
                .ok()
                .filter(|n| *n > 0)
                .ok_or_else(|| format!("`{name}` needs a positive integer, got `{v}`\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value,
            "--workers" => config.workers = parse_count("--workers", &value)?,
            "--queue" => config.queue_capacity = parse_count("--queue", &value)?,
            "--cache" => config.cache_capacity = parse_count("--cache", &value)?,
            "--shards" => {
                // 0 is meaningful here (auto-detect), unlike the other counts.
                config.event_shards = value.parse::<usize>().map_err(|_| {
                    format!("`--shards` needs a non-negative integer, got `{value}`\n{USAGE}")
                })?;
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse_args(std::env::args().skip(1)) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    let handle = match start(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("ce-serve: failed to bind: {e}");
            return ExitCode::from(1);
        }
    };
    println!("ce-serve listening on http://{}", handle.addr());
    // Serve until the process is killed; the handle's Drop would shut the
    // pool down, so keep it alive here.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_overrides() {
        let config = parse_args(std::iter::empty()).expect("defaults");
        assert_eq!(config.addr, "127.0.0.1:7878");
        assert_eq!(config.event_shards, 0, "binary defaults to auto shards");
        let config = parse_args(
            [
                "--addr",
                "0.0.0.0:0",
                "--workers",
                "4",
                "--queue",
                "8",
                "--cache",
                "16",
                "--shards",
                "2",
            ]
            .into_iter()
            .map(String::from),
        )
        .expect("parses");
        assert_eq!(config.addr, "0.0.0.0:0");
        assert_eq!(config.workers, 4);
        assert_eq!(config.queue_capacity, 8);
        assert_eq!(config.cache_capacity, 16);
        assert_eq!(config.event_shards, 2);
    }

    #[test]
    fn bad_flags_are_rejected_with_usage() {
        for bad in [
            vec!["--workers"],
            vec!["--workers", "0"],
            vec!["--workers", "x"],
            vec!["--nope", "1"],
            vec!["--help"],
        ] {
            let err = parse_args(bad.iter().map(ToString::to_string)).expect_err("rejects");
            assert!(err.contains("usage:"), "{err}");
        }
    }
}
