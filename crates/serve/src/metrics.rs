//! Per-endpoint request counters and log-spaced latency histograms,
//! rendered as the `/stats` response.
//!
//! Everything here is lock-free (`AtomicU64` with relaxed ordering —
//! counters are monotone telemetry, not synchronization). Latencies land
//! in power-of-two microsecond buckets, so the histogram is fixed-size,
//! allocation-free on the record path, and good enough to read p50/p99 off
//! bucket upper bounds.
//!
//! `/stats` output is observational (it reflects wall-clock timing and
//! request interleaving) and is deliberately *outside* the bitwise
//! determinism contract that covers compute responses.

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of latency buckets; bucket `i` counts requests with latency in
/// `[2^(i-1), 2^i)` microseconds (bucket 0 is `< 1µs`), and the last
/// bucket absorbs everything slower.
pub const LATENCY_BUCKETS: usize = 32;

/// The service's routable endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /evaluate` — one design point.
    Evaluate,
    /// `POST /explore` — a full design-space sweep.
    Explore,
    /// `POST /optimal` — carbon-optimal search.
    Optimal,
    /// `GET /healthz` — liveness probe.
    Healthz,
    /// `GET /stats` — this module's output.
    Stats,
    /// `GET /scenarios` — supply scenarios and strategies.
    Scenarios,
    /// `GET /manifest/<hash>` — content-addressed provenance lookup.
    Manifest,
}

impl Endpoint {
    /// All endpoints, in `/stats` reporting order.
    pub const ALL: [Endpoint; 7] = [
        Endpoint::Evaluate,
        Endpoint::Explore,
        Endpoint::Optimal,
        Endpoint::Healthz,
        Endpoint::Stats,
        Endpoint::Scenarios,
        Endpoint::Manifest,
    ];

    /// The stats-object field name for this endpoint.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Evaluate => "evaluate",
            Endpoint::Explore => "explore",
            Endpoint::Optimal => "optimal",
            Endpoint::Healthz => "healthz",
            Endpoint::Stats => "stats",
            Endpoint::Scenarios => "scenarios",
            Endpoint::Manifest => "manifest",
        }
    }
}

/// Counters and latency histogram for one endpoint.
#[derive(Debug)]
pub struct EndpointMetrics {
    /// Requests routed here (whatever the outcome).
    pub requests: AtomicU64,
    /// Responses with status >= 400 (shed requests included).
    pub errors: AtomicU64,
    /// Requests shed with `429` because the job queue was full.
    pub shed: AtomicU64,
    /// Responses served from the response cache.
    pub cache_hits: AtomicU64,
    /// Requests that attached to an identical in-flight computation.
    pub coalesced: AtomicU64,
    /// Computations actually executed by a worker for this endpoint.
    pub computed: AtomicU64,
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for EndpointMetrics {
    fn default() -> Self {
        Self {
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            computed: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl EndpointMetrics {
    /// Records one observed request latency.
    pub fn record_latency_micros(&self, micros: u64) {
        let bits = (u64::BITS - micros.leading_zeros()) as usize;
        let bucket = bits.min(self.buckets.len() - 1);
        // ce:ordering(independent monotone counters; readers only need eventual totals)
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Estimated latency quantile `q ∈ [0, 1]`, in microseconds, as the
    /// upper bound of the bucket containing that rank (0 with no samples).
    pub fn latency_quantile_micros(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            // ce:ordering(snapshot of monotone counters; cross-bucket skew is inherent to sampling)
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let clamped = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based; ceil without going through
        // float rounding on large totals.
        let target = ((clamped * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper_bound_micros(i);
            }
        }
        bucket_upper_bound_micros(LATENCY_BUCKETS - 1)
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("requests", load(&self.requests)),
            ("errors", load(&self.errors)),
            ("shed", load(&self.shed)),
            ("cache_hits", load(&self.cache_hits)),
            ("coalesced", load(&self.coalesced)),
            ("computed", load(&self.computed)),
            (
                "p50_micros",
                Json::Num(self.latency_quantile_micros(0.50) as f64),
            ),
            (
                "p99_micros",
                Json::Num(self.latency_quantile_micros(0.99) as f64),
            ),
        ])
    }
}

fn load(counter: &AtomicU64) -> Json {
    // ce:ordering(stats rendering of monotone counters; exactness across counters is not required)
    Json::Num(counter.load(Ordering::Relaxed) as f64)
}

/// Upper bound (µs) of latency bucket `i`.
fn bucket_upper_bound_micros(i: usize) -> u64 {
    1u64 << i.min(63)
}

/// Event-loop and cache counters for one shard, published to `/stats` as
/// one element of the `"shards"` array. These make the sharding claim
/// observable: per-shard hit rates show the cache partitioning working,
/// and the loop counters (wakeups, partial reads, short writes) expose
/// how the readiness loop is actually behaving under load.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Times the shard's waker fired (worker completions arriving).
    pub wakeups: AtomicU64,
    /// `poll(2)` calls the event loop made.
    pub polls: AtomicU64,
    /// Connections this shard accepted.
    pub accepts: AtomicU64,
    /// Read events that left a partial request buffered (the incremental
    /// parser reported "need more bytes").
    pub partial_reads: AtomicU64,
    /// Write attempts that could not flush the full output buffer.
    pub short_writes: AtomicU64,
    /// Responses served from this shard's response cache.
    pub cache_hits: AtomicU64,
    /// Compute requests that missed this shard's response cache.
    pub cache_misses: AtomicU64,
    /// Entries evicted from this shard's response cache.
    pub cache_evictions: AtomicU64,
    /// Responses streamed as `transfer-encoding: chunked`.
    pub streamed: AtomicU64,
}

impl ShardStats {
    /// Renders this shard's counters plus caller-supplied point-in-time
    /// gauges (cache entries, in-flight keys, queue depth).
    pub fn to_json(&self, gauges: &[(&str, f64)]) -> Json {
        let mut fields: Vec<(String, Json)> = gauges
            .iter()
            .map(|(name, value)| ((*name).to_string(), Json::Num(*value)))
            .collect();
        for (name, counter) in [
            ("wakeups", &self.wakeups),
            ("polls", &self.polls),
            ("accepts", &self.accepts),
            ("partial_reads", &self.partial_reads),
            ("short_writes", &self.short_writes),
            ("cache_hits", &self.cache_hits),
            ("cache_misses", &self.cache_misses),
            ("cache_evictions", &self.cache_evictions),
            ("streamed", &self.streamed),
        ] {
            fields.push((name.to_string(), load(counter)));
        }
        Json::Obj(fields)
    }
}

/// All endpoints' metrics; one instance lives in the server's shared state.
#[derive(Debug)]
pub struct Metrics {
    per: [EndpointMetrics; Endpoint::ALL.len()],
}

impl Default for Metrics {
    fn default() -> Self {
        Self {
            per: std::array::from_fn(|_| EndpointMetrics::default()),
        }
    }
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counters for `endpoint`.
    pub fn endpoint(&self, endpoint: Endpoint) -> &EndpointMetrics {
        // ce:allow(index, reason = "enum discriminants are 0..Endpoint::ALL.len(), the array's exact length")
        &self.per[endpoint as usize]
    }

    /// Renders the `/stats` body: one object per endpoint plus the
    /// caller-supplied point-in-time gauges (queue depth, busy workers…).
    pub fn to_json(&self, gauges: &[(&str, f64)]) -> Json {
        let mut fields: Vec<(String, Json)> = Vec::new();
        for (name, value) in gauges {
            fields.push(((*name).to_string(), Json::Num(*value)));
        }
        let endpoints = Endpoint::ALL
            .iter()
            .map(|&e| (e.name().to_string(), self.endpoint(e).to_json()))
            .collect();
        fields.push(("endpoints".to_string(), Json::Obj(endpoints)));
        Json::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_indexing_matches_all_order() {
        let m = Metrics::new();
        for (i, &e) in Endpoint::ALL.iter().enumerate() {
            assert_eq!(e as usize, i);
            m.endpoint(e).requests.fetch_add(1, Ordering::Relaxed);
        }
        for &e in &Endpoint::ALL {
            assert_eq!(m.endpoint(e).requests.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn latency_buckets_are_log_spaced() {
        let em = EndpointMetrics::default();
        em.record_latency_micros(0); // bucket 0
        em.record_latency_micros(1); // bucket 1 (upper bound 2)
        em.record_latency_micros(1000); // bucket 10 (upper bound 1024)
        assert_eq!(em.latency_quantile_micros(0.0), 1);
        assert_eq!(em.latency_quantile_micros(1.0), 1024);
        assert_eq!(em.latency_quantile_micros(0.5), 2);
    }

    #[test]
    fn quantiles_with_no_samples_are_zero() {
        let em = EndpointMetrics::default();
        assert_eq!(em.latency_quantile_micros(0.99), 0);
    }

    #[test]
    fn huge_latencies_land_in_last_bucket() {
        let em = EndpointMetrics::default();
        em.record_latency_micros(u64::MAX);
        assert_eq!(
            em.latency_quantile_micros(1.0),
            bucket_upper_bound_micros(LATENCY_BUCKETS - 1)
        );
    }

    #[test]
    fn shard_stats_render_gauges_and_counters() {
        let s = ShardStats::default();
        s.wakeups.fetch_add(4, Ordering::Relaxed);
        s.short_writes.fetch_add(1, Ordering::Relaxed);
        let json = s.to_json(&[("cache_entries", 7.0)]);
        assert_eq!(json.get("cache_entries").and_then(Json::as_f64), Some(7.0));
        assert_eq!(json.get("wakeups").and_then(Json::as_f64), Some(4.0));
        assert_eq!(json.get("short_writes").and_then(Json::as_f64), Some(1.0));
        assert_eq!(json.get("partial_reads").and_then(Json::as_f64), Some(0.0));
        for name in [
            "polls",
            "accepts",
            "cache_hits",
            "cache_misses",
            "cache_evictions",
            "streamed",
        ] {
            assert!(json.get(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn stats_json_shape() {
        let m = Metrics::new();
        m.endpoint(Endpoint::Evaluate)
            .cache_hits
            .fetch_add(3, Ordering::Relaxed);
        let json = m.to_json(&[("queue_depth", 2.0)]);
        assert_eq!(json.get("queue_depth").and_then(Json::as_f64), Some(2.0));
        let eps = json.get("endpoints").expect("endpoints");
        let eval = eps.get("evaluate").expect("evaluate");
        assert_eq!(eval.get("cache_hits").and_then(Json::as_f64), Some(3.0));
        for &e in &Endpoint::ALL {
            assert!(eps.get(e.name()).is_some(), "missing {}", e.name());
        }
    }
}
