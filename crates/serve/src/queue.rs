//! A bounded multi-producer/multi-consumer job queue.
//!
//! Connection handlers push compute jobs; the fixed worker pool pops them.
//! The queue is the server's backpressure point: [`BoundedQueue::try_push`]
//! never blocks and reports a full queue to the caller, which the HTTP
//! layer translates into `429 Too Many Requests` + `Retry-After` (shedding
//! load at the door instead of queueing unboundedly). [`BoundedQueue::pop`]
//! blocks, so idle workers cost nothing.
//!
//! Closing the queue ([`BoundedQueue::close`]) is the graceful-shutdown
//! signal: producers are refused, but consumers keep draining whatever was
//! already accepted before they see `None`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Why a [`BoundedQueue::try_push`] was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — shed the request.
    Full,
    /// The queue was closed — the server is shutting down.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue built on `Mutex` + `Condvar` (no external
/// dependencies, no spinning).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
    /// Lock-free depth gauge, maintained alongside the locked state so
    /// stats paths (which run inside the event loop) never take the lock.
    depth: AtomicUsize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
            depth: AtomicUsize::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        // A poisoned lock means a producer/consumer panicked while holding
        // it; the queue state itself is still coherent (every mutation is
        // a single push/pop), so recover rather than propagate.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues `item` without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`]. The item is dropped in both cases.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.items.push_back(item);
        // ce:ordering(depth is a monitoring gauge shadowing mutex-guarded state; no reader synchronizes on it)
        self.depth.store(inner.items.len(), Ordering::Relaxed);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained, returning `None` only in the latter case — consumers see
    /// every accepted item even during shutdown.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                // ce:ordering(gauge update under the queue mutex; the lock provides the ordering)
                self.depth.store(inner.items.len(), Ordering::Relaxed);
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: subsequent pushes fail with [`PushError::Closed`]
    /// and blocked consumers wake once the backlog drains.
    pub fn close(&self) {
        let mut inner = self.lock();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
    }

    /// Number of items currently queued (racy by nature; a gauge, not a
    /// synchronization primitive). Reads an atomic shadow of the locked
    /// depth, so callers on the event-loop hot path never contend on the
    /// queue mutex.
    pub fn depth(&self) -> usize {
        // ce:ordering(racy gauge read by design; staleness is acceptable for load shedding)
        self.depth.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(()));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn close_refuses_producers_but_drains_consumers() {
        let q = BoundedQueue::new(4);
        q.try_push(10).expect("push");
        q.try_push(11).expect("push");
        q.close();
        assert_eq!(q.try_push(12), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Err(PushError::Full));
    }

    #[test]
    fn blocking_pop_wakes_on_push_and_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        for i in 0..32 {
            // Spin until accepted: the consumer drains concurrently.
            loop {
                if q.try_push(i).is_ok() {
                    break;
                }
                std::thread::yield_now();
            }
        }
        q.close();
        let got = consumer.join().expect("consumer");
        assert_eq!(got, (0..32).collect::<Vec<_>>());
    }
}
