//! Wire-schema parsing, canonical scenario keys, and request execution.
//!
//! A compute request names an *operational context* (which datacenter
//! demand trace and which grid, via `site` or `ba` + `demand_mw`, plus
//! `year`/`seed`), a strategy, and either one design point (`/evaluate`)
//! or a design space (`/explore`, `/optimal`). Parsing is strict: unknown
//! sites are 404, out-of-range values are 422, malformed shapes are 400.
//!
//! # Canonical keys
//!
//! [`ComputeRequest::canonical_key`] renders a request as a canonical
//! string — every float as the `{:016x}` hex of its IEEE-754 bits, every
//! enum as its `canonical_key()` wire name, defaults filled in — so two
//! requests that differ only in JSON formatting, field order, or spelled
//! defaults map to the same key. The key is the identity used for
//! response caching and in-flight coalescing; its hash (see
//! [`crate::hash`]) only ever picks a cache shard.
//!
//! # Determinism
//!
//! [`execute`] is a pure function of the request and the explorer: it
//! calls the same engine entry points a library caller would and encodes
//! with [`Json::encode`], so a served body is bitwise identical to a
//! direct in-process computation.

use crate::json::Json;
use crate::metrics::Endpoint;
use ce_core::provenance;
use ce_core::{
    CarbonExplorer, DesignPoint, DesignSpace, EvalScratch, EvaluatedDesign, Scenario, StrategyKind,
};
use ce_datacenter::Fleet;
use ce_grid::{BalancingAuthority, GridDataset};
use ce_manifest::Manifest;
use ce_timeseries::HourlySeries;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, PoisonError};

/// A request the service refused, with the HTTP status to report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// HTTP status code (400, 404, or 422).
    pub status: u16,
    /// Human-readable reason, returned as `{"error": …}`.
    pub message: String,
}

impl RequestError {
    fn bad(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }

    fn unprocessable(message: impl Into<String>) -> Self {
        Self {
            status: 422,
            message: message.into(),
        }
    }

    fn not_found(message: impl Into<String>) -> Self {
        Self {
            status: 404,
            message: message.into(),
        }
    }
}

/// Validation limits for design spaces (guard rails against a single
/// request monopolizing a worker).
#[derive(Debug, Clone)]
pub struct Limits {
    /// Maximum `steps` on any single axis.
    pub max_axis_steps: usize,
    /// Maximum total design points per `/explore` or `/optimal` request
    /// (after strategy restriction collapses inert axes).
    pub max_points: usize,
    /// Maximum `refine_rounds` on `/optimal`.
    pub max_refine_rounds: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_axis_steps: 512,
            max_points: 4096,
            max_refine_rounds: 8,
        }
    }
}

/// Where the demand trace comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum DemandSource {
    /// A fleet site by state code (e.g. `"UT"`); demand is the site's
    /// synthesized trace and the grid is the site's balancing authority.
    Site(String),
    /// A flat demand at `demand_mw` on an explicitly chosen grid.
    Constant {
        /// The balancing authority to synthesize grid data for.
        ba: BalancingAuthority,
        /// Constant datacenter demand, MW.
        demand_mw: f64,
    },
}

/// The operational context a request evaluates against: demand source,
/// data year, and synthesis seed. One context = one [`CarbonExplorer`].
#[derive(Debug, Clone, PartialEq)]
pub struct Context {
    /// Demand/grid selection.
    pub source: DemandSource,
    /// Year of synthesized data.
    pub year: i32,
    /// Synthesis seed.
    pub seed: u64,
}

impl Context {
    /// The canonical string identifying this context (the explorer-cache
    /// key). Floats are rendered as IEEE-754 bit patterns.
    pub fn canonical_key(&self) -> String {
        let mut key = String::new();
        match &self.source {
            DemandSource::Site(state) => {
                let _ = write!(key, "site={state};");
            }
            DemandSource::Constant { ba, demand_mw } => {
                let _ = write!(key, "ba={};mw={:016x};", ba.code(), demand_mw.to_bits());
            }
        }
        let _ = write!(key, "year={};seed={};", self.year, self.seed);
        key
    }
}

/// Which compute endpoint a body was posted to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComputeKind {
    /// `POST /evaluate`.
    Evaluate,
    /// `POST /explore`.
    Explore,
    /// `POST /optimal`.
    Optimal,
}

/// A fully validated compute request.
#[derive(Debug, Clone, PartialEq)]
pub enum ComputeRequest {
    /// Evaluate one design point.
    Evaluate {
        /// Operational context.
        ctx: Context,
        /// Strategy to evaluate under.
        strategy: StrategyKind,
        /// The design point.
        design: DesignPoint,
        /// Attach a provenance manifest to the response.
        manifest: bool,
    },
    /// Sweep a design space, returning every evaluation.
    Explore {
        /// Operational context.
        ctx: Context,
        /// Strategy to evaluate under.
        strategy: StrategyKind,
        /// The (unrestricted) design space.
        space: DesignSpace,
        /// Attach a provenance manifest to the response.
        manifest: bool,
    },
    /// Find the carbon-optimal design in a space.
    Optimal {
        /// Operational context.
        ctx: Context,
        /// Strategy to evaluate under.
        strategy: StrategyKind,
        /// The (unrestricted) design space.
        space: DesignSpace,
        /// Local grid-refinement rounds around the coarse optimum.
        refine_rounds: usize,
    },
}

impl ComputeRequest {
    /// Parses and validates a request body for `kind`.
    ///
    /// # Errors
    ///
    /// [`RequestError`] with status 400 (malformed shape), 404 (unknown
    /// site), or 422 (well-formed but out-of-range values).
    pub fn parse(kind: ComputeKind, body: &Json, limits: &Limits) -> Result<Self, RequestError> {
        if body.as_object().is_none() {
            return Err(RequestError::bad("request body must be a JSON object"));
        }
        let ctx = parse_context(body)?;
        let strategy = parse_strategy(body)?;
        match kind {
            ComputeKind::Evaluate => {
                let design = parse_design(body)?;
                let manifest = parse_manifest_flag(body)?;
                Ok(ComputeRequest::Evaluate {
                    ctx,
                    strategy,
                    design,
                    manifest,
                })
            }
            ComputeKind::Explore => {
                let space = parse_space(body, strategy, limits)?;
                let manifest = parse_manifest_flag(body)?;
                Ok(ComputeRequest::Explore {
                    ctx,
                    strategy,
                    space,
                    manifest,
                })
            }
            ComputeKind::Optimal => {
                let space = parse_space(body, strategy, limits)?;
                let refine_rounds = match body.get("refine_rounds") {
                    None => 0,
                    Some(v) => {
                        let n = as_index(v).ok_or_else(|| {
                            RequestError::bad("`refine_rounds` must be a non-negative integer")
                        })?;
                        if n > limits.max_refine_rounds {
                            return Err(RequestError::unprocessable(format!(
                                "`refine_rounds` exceeds the limit of {}",
                                limits.max_refine_rounds
                            )));
                        }
                        n
                    }
                };
                Ok(ComputeRequest::Optimal {
                    ctx,
                    strategy,
                    space,
                    refine_rounds,
                })
            }
        }
    }

    /// The operational context of this request.
    pub fn context(&self) -> &Context {
        match self {
            ComputeRequest::Evaluate { ctx, .. }
            | ComputeRequest::Explore { ctx, .. }
            | ComputeRequest::Optimal { ctx, .. } => ctx,
        }
    }

    /// The wire kind this request was posted as.
    pub fn kind(&self) -> ComputeKind {
        match self {
            ComputeRequest::Evaluate { .. } => ComputeKind::Evaluate,
            ComputeRequest::Explore { .. } => ComputeKind::Explore,
            ComputeRequest::Optimal { .. } => ComputeKind::Optimal,
        }
    }

    /// The metrics endpoint this request belongs to.
    pub fn endpoint(&self) -> Endpoint {
        match self {
            ComputeRequest::Evaluate { .. } => Endpoint::Evaluate,
            ComputeRequest::Explore { .. } => Endpoint::Explore,
            ComputeRequest::Optimal { .. } => Endpoint::Optimal,
        }
    }

    /// For `/explore` requests, the number of effective design points the
    /// sweep will evaluate (after strategy restriction); `None` for other
    /// kinds. The server compares this against its streaming threshold to
    /// choose `content-length` vs `transfer-encoding: chunked` framing.
    pub fn explore_points(&self) -> Option<usize> {
        match self {
            ComputeRequest::Explore {
                strategy, space, ..
            } => Some(space.restricted_to(*strategy).len()),
            _ => None,
        }
    }

    /// The strategy this request evaluates under.
    pub fn strategy(&self) -> StrategyKind {
        match self {
            ComputeRequest::Evaluate { strategy, .. }
            | ComputeRequest::Explore { strategy, .. }
            | ComputeRequest::Optimal { strategy, .. } => *strategy,
        }
    }

    /// Whether this request asked for a provenance manifest. The flag is
    /// part of the canonical key: a manifest-bearing response has
    /// different bytes, so it must be a different cache identity.
    pub fn wants_manifest(&self) -> bool {
        match self {
            ComputeRequest::Evaluate { manifest, .. }
            | ComputeRequest::Explore { manifest, .. } => *manifest,
            ComputeRequest::Optimal { .. } => false,
        }
    }

    /// The canonical scenario key of this request (see the module docs).
    pub fn canonical_key(&self) -> String {
        let mut key = String::new();
        match self {
            ComputeRequest::Evaluate {
                ctx,
                strategy,
                design,
                manifest,
            } => {
                key.push_str("evaluate;");
                key.push_str(&ctx.canonical_key());
                let _ = write!(key, "strategy={};", strategy.canonical_key());
                push_bits(&mut key, "solar", design.solar_mw);
                push_bits(&mut key, "wind", design.wind_mw);
                push_bits(&mut key, "battery", design.battery_mwh);
                push_bits(&mut key, "extra", design.extra_capacity_fraction);
                if *manifest {
                    key.push_str("manifest=1;");
                }
            }
            ComputeRequest::Explore {
                ctx,
                strategy,
                space,
                manifest,
            } => {
                key.push_str("explore;");
                key.push_str(&ctx.canonical_key());
                let _ = write!(key, "strategy={};", strategy.canonical_key());
                push_space(&mut key, space);
                if *manifest {
                    key.push_str("manifest=1;");
                }
            }
            ComputeRequest::Optimal {
                ctx,
                strategy,
                space,
                refine_rounds,
            } => {
                key.push_str("optimal;");
                key.push_str(&ctx.canonical_key());
                let _ = write!(key, "strategy={};", strategy.canonical_key());
                push_space(&mut key, space);
                let _ = write!(key, "rounds={refine_rounds};");
            }
        }
        key
    }
}

fn push_bits(out: &mut String, name: &str, value: f64) {
    let _ = write!(out, "{name}={:016x};", value.to_bits());
}

fn push_space(out: &mut String, space: &DesignSpace) {
    for (name, (min, max, steps)) in [
        ("solar", space.solar),
        ("wind", space.wind),
        ("battery", space.battery),
        ("extra", space.extra_capacity),
    ] {
        let _ = write!(
            out,
            "{name}={:016x},{:016x},{steps};",
            min.to_bits(),
            max.to_bits()
        );
    }
}

/// Reads a JSON number as an exact non-negative integer.
fn as_index(v: &Json) -> Option<usize> {
    let n = v.as_f64()?;
    if !n.is_finite() || n < 0.0 {
        return None;
    }
    let i = n as u64;
    if (i as f64 - n).abs() > 1e-9 {
        return None;
    }
    usize::try_from(i).ok()
}

fn as_finite(v: &Json) -> Option<f64> {
    v.as_f64().filter(|n| n.is_finite())
}

/// Reads the optional `manifest` opt-in flag (absent means `false`).
fn parse_manifest_flag(body: &Json) -> Result<bool, RequestError> {
    match body.get("manifest") {
        None => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| RequestError::bad("`manifest` must be a boolean")),
    }
}

fn parse_context(body: &Json) -> Result<Context, RequestError> {
    let year = match body.get("year") {
        None => 2020,
        Some(v) => {
            let y = as_index(v)
                .ok_or_else(|| RequestError::bad("`year` must be a non-negative integer"))?;
            if !(1990..=2100).contains(&y) {
                return Err(RequestError::unprocessable("`year` must be in 1990..=2100"));
            }
            y as i32
        }
    };
    let seed = match body.get("seed") {
        None => 7,
        Some(v) => as_index(v)
            .ok_or_else(|| RequestError::bad("`seed` must be a non-negative integer"))?
            as u64,
    };
    let site = body.get("site");
    let ba = body.get("ba");
    let source = match (site, ba) {
        (Some(_), Some(_)) => {
            return Err(RequestError::bad("specify either `site` or `ba`, not both"));
        }
        (Some(site), None) => {
            let state = site
                .as_str()
                .ok_or_else(|| RequestError::bad("`site` must be a state-code string"))?;
            let fleet = Fleet::meta_us();
            if fleet.site(state).is_none() {
                let known: Vec<&str> = fleet.sites().iter().map(|s| s.state()).collect();
                return Err(RequestError::not_found(format!(
                    "unknown site `{state}`; known sites: {}",
                    known.join(", ")
                )));
            }
            DemandSource::Site(state.to_string())
        }
        (None, Some(ba)) => {
            let code = ba.as_str().ok_or_else(|| {
                RequestError::bad("`ba` must be a balancing-authority code string")
            })?;
            let ba = BalancingAuthority::ALL
                .into_iter()
                .find(|b| b.code() == code)
                .ok_or_else(|| {
                    let known: Vec<&str> =
                        BalancingAuthority::ALL.iter().map(|b| b.code()).collect();
                    RequestError::unprocessable(format!(
                        "unknown balancing authority `{code}`; known: {}",
                        known.join(", ")
                    ))
                })?;
            let demand_mw = body
                .get("demand_mw")
                .and_then(as_finite)
                .ok_or_else(|| RequestError::bad("`ba` requests need a finite `demand_mw`"))?;
            if demand_mw <= 0.0 || demand_mw > 1e6 {
                return Err(RequestError::unprocessable(
                    "`demand_mw` must be in (0, 1e6] MW",
                ));
            }
            DemandSource::Constant { ba, demand_mw }
        }
        (None, None) => {
            return Err(RequestError::bad(
                "one of `site` (state code) or `ba` (+ `demand_mw`) is required",
            ));
        }
    };
    Ok(Context { source, year, seed })
}

fn parse_strategy(body: &Json) -> Result<StrategyKind, RequestError> {
    let raw = body
        .get("strategy")
        .and_then(Json::as_str)
        .ok_or_else(|| RequestError::bad("`strategy` is required and must be a string"))?;
    StrategyKind::from_canonical_key(raw).ok_or_else(|| {
        let known: Vec<&str> = StrategyKind::ALL
            .iter()
            .map(|s| s.canonical_key())
            .collect();
        RequestError::unprocessable(format!(
            "unknown strategy `{raw}`; known: {}",
            known.join(", ")
        ))
    })
}

fn design_field(design: &Json, name: &str, max: f64) -> Result<f64, RequestError> {
    let Some(v) = design.get(name) else {
        return Ok(0.0);
    };
    let n = as_finite(v).ok_or_else(|| {
        RequestError::bad(format!("design field `{name}` must be a finite number"))
    })?;
    if n < 0.0 || n > max {
        return Err(RequestError::unprocessable(format!(
            "design field `{name}` must be in [0, {max}]"
        )));
    }
    Ok(n)
}

fn parse_design(body: &Json) -> Result<DesignPoint, RequestError> {
    let design = body
        .get("design")
        .ok_or_else(|| RequestError::bad("`design` object is required"))?;
    if design.as_object().is_none() {
        return Err(RequestError::bad("`design` must be a JSON object"));
    }
    Ok(DesignPoint {
        solar_mw: design_field(design, "solar_mw", 1e7)?,
        wind_mw: design_field(design, "wind_mw", 1e7)?,
        battery_mwh: design_field(design, "battery_mwh", 1e8)?,
        extra_capacity_fraction: design_field(design, "extra_capacity_fraction", 10.0)?,
    })
}

fn parse_axis(
    space: &Json,
    name: &str,
    limits: &Limits,
) -> Result<(f64, f64, usize), RequestError> {
    let Some(v) = space.get(name) else {
        // An omitted axis is pinned at zero (one step), matching how
        // strategy restriction collapses inert axes.
        return Ok((0.0, 0.0, 1));
    };
    let arr = v
        .as_array()
        .filter(|a| a.len() == 3)
        .ok_or_else(|| RequestError::bad(format!("axis `{name}` must be `[min, max, steps]`")))?;
    let min = as_finite(&arr[0])
        .ok_or_else(|| RequestError::bad(format!("axis `{name}` min must be a finite number")))?;
    let max = as_finite(&arr[1])
        .ok_or_else(|| RequestError::bad(format!("axis `{name}` max must be a finite number")))?;
    let steps = as_index(&arr[2])
        .ok_or_else(|| RequestError::bad(format!("axis `{name}` steps must be an integer")))?;
    if min < 0.0 || max < min {
        return Err(RequestError::unprocessable(format!(
            "axis `{name}` needs 0 <= min <= max"
        )));
    }
    if steps == 0 || steps > limits.max_axis_steps {
        return Err(RequestError::unprocessable(format!(
            "axis `{name}` steps must be in 1..={}",
            limits.max_axis_steps
        )));
    }
    Ok((min, max, steps))
}

fn parse_space(
    body: &Json,
    strategy: StrategyKind,
    limits: &Limits,
) -> Result<DesignSpace, RequestError> {
    let space = body
        .get("space")
        .ok_or_else(|| RequestError::bad("`space` object is required"))?;
    if space.as_object().is_none() {
        return Err(RequestError::bad("`space` must be a JSON object"));
    }
    let parsed = DesignSpace {
        solar: parse_axis(space, "solar", limits)?,
        wind: parse_axis(space, "wind", limits)?,
        battery: parse_axis(space, "battery", limits)?,
        extra_capacity: parse_axis(space, "extra_capacity", limits)?,
    };
    let effective = parsed.restricted_to(strategy).len();
    if effective > limits.max_points {
        return Err(RequestError::unprocessable(format!(
            "space has {effective} effective points, over the limit of {}",
            limits.max_points
        )));
    }
    Ok(parsed)
}

/// Builds the [`CarbonExplorer`] for a context (grid synthesis + demand
/// trace — the expensive, cacheable part of serving a request).
///
/// # Errors
///
/// 404 for a site that disappeared between parse and build (cannot happen
/// through [`ComputeRequest::parse`], which validates sites eagerly).
pub fn build_explorer(ctx: &Context) -> Result<CarbonExplorer, RequestError> {
    match &ctx.source {
        DemandSource::Site(state) => {
            let fleet = Fleet::meta_us();
            let site = fleet
                .site(state)
                .ok_or_else(|| RequestError::not_found(format!("unknown site `{state}`")))?;
            let grid = GridDataset::synthesize(site.ba(), ctx.year, ctx.seed);
            Ok(CarbonExplorer::new(
                site.demand_trace(ctx.year, ctx.seed),
                grid,
            ))
        }
        DemandSource::Constant { ba, demand_mw } => {
            let grid = GridDataset::synthesize(*ba, ctx.year, ctx.seed);
            let intensity = grid.carbon_intensity();
            let demand = HourlySeries::constant(intensity.start(), intensity.len(), *demand_mw);
            Ok(CarbonExplorer::new(demand, grid))
        }
    }
}

/// A small LRU of built [`CarbonExplorer`]s keyed by context canonical
/// key, shared by the worker pool. Contexts are few (a handful of sites ×
/// years) while designs are many, so a tiny cache removes the dominant
/// per-request cost for the common case.
pub struct ExplorerCache {
    inner: Mutex<Vec<(String, Arc<CarbonExplorer>)>>,
    capacity: usize,
    /// Lock-free entry gauge mirroring `inner.len()`, so `/stats` (served
    /// from inside the event loop) never touches the cache mutex.
    entries: std::sync::atomic::AtomicUsize,
}

impl ExplorerCache {
    /// Creates a cache holding at most `capacity` explorers (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
            entries: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Returns the cached explorer for `ctx`, building (outside the lock)
    /// on a miss. Concurrent misses may build twice; both builds are
    /// deterministic and identical, so either result is correct.
    ///
    /// # Errors
    ///
    /// Propagates [`build_explorer`] failures.
    pub fn get_or_build(&self, ctx: &Context) -> Result<Arc<CarbonExplorer>, RequestError> {
        let key = ctx.canonical_key();
        {
            let mut cache = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(pos) = cache.iter().position(|(k, _)| *k == key) {
                // Move to the back: back = most recently used.
                let entry = cache.remove(pos);
                let explorer = Arc::clone(&entry.1);
                cache.push(entry);
                return Ok(explorer);
            }
        }
        let explorer = Arc::new(build_explorer(ctx)?);
        let mut cache = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if !cache.iter().any(|(k, _)| *k == key) {
            cache.push((key, Arc::clone(&explorer)));
            if cache.len() > self.capacity {
                cache.remove(0);
            }
            // ce:ordering(gauge shadow written under the cache mutex; the lock provides the ordering)
            self.entries
                .store(cache.len(), std::sync::atomic::Ordering::Relaxed);
        }
        Ok(explorer)
    }

    /// Number of cached explorers (a `/stats` gauge). Reads an atomic
    /// shadow of the locked length, so the event loop never contends on
    /// the cache mutex to render stats.
    pub fn entry_count(&self) -> usize {
        // ce:ordering(racy stats gauge; staleness is fine, no memory is published through it)
        self.entries.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// A bounded registry of served manifests, content-addressed by result
/// hash: `GET /manifest/<result_hash>` answers from here. Workers insert
/// after computing a manifest-bearing response; the event loop looks up
/// inline. Insertion order is eviction order (FIFO) — a manifest is a
/// tiny immutable record, so recency tracking buys nothing.
pub struct ManifestStore {
    inner: Mutex<Vec<(Arc<str>, Arc<str>)>>,
    capacity: usize,
    /// Lock-free entry gauge mirroring `inner.len()` for `/stats`.
    entries: std::sync::atomic::AtomicUsize,
}

impl ManifestStore {
    /// Creates a store holding at most `capacity` manifests (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
            entries: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Registers a manifest body under its result hash. Re-registering an
    /// existing hash is a no-op: content addressing means the body is
    /// already byte-identical.
    pub fn insert(&self, result_hash: &str, body: Arc<str>) {
        // ce:allow(blocking, reason = "one push under a lock readers hold for a bounded scan; only workers insert")
        let mut store = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if store.iter().any(|(hash, _)| hash.as_ref() == result_hash) {
            return;
        }
        store.push((Arc::from(result_hash), body));
        if store.len() > self.capacity {
            store.remove(0);
        }
        // ce:ordering(gauge shadow written under the registry mutex; the lock provides the ordering)
        self.entries
            .store(store.len(), std::sync::atomic::Ordering::Relaxed);
    }

    /// The manifest body registered under `result_hash`, if any.
    pub fn get(&self, result_hash: &str) -> Option<Arc<str>> {
        // ce:allow(blocking, reason = "bounded scan of a small vector; writers hold the lock for one push")
        let store = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        store
            .iter()
            .find(|(hash, _)| hash.as_ref() == result_hash)
            .map(|(_, body)| Arc::clone(body))
    }

    /// Number of registered manifests (a `/stats` gauge); reads the
    /// atomic shadow, never the lock.
    pub fn entry_count(&self) -> usize {
        // ce:ordering(racy stats gauge; staleness is fine, no memory is published through it)
        self.entries.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Renders one evaluation as the wire object: the strategy's canonical
/// key, the design point, and every [`EvaluatedDesign::canonical_fields`]
/// metric in its pinned order.
pub fn evaluation_json(eval: &EvaluatedDesign) -> Json {
    let design = Json::obj(vec![
        ("solar_mw", Json::Num(eval.design.solar_mw)),
        ("wind_mw", Json::Num(eval.design.wind_mw)),
        ("battery_mwh", Json::Num(eval.design.battery_mwh)),
        (
            "extra_capacity_fraction",
            Json::Num(eval.design.extra_capacity_fraction),
        ),
    ]);
    let mut fields = vec![
        ("strategy", Json::string(eval.strategy.canonical_key())),
        ("design", design),
    ];
    for (name, value) in eval.canonical_fields() {
        fields.push((name, Json::Num(value)));
    }
    Json::obj(fields)
}

/// The balancing authority a context's grid data is synthesized for —
/// the `ba` field stamped into provenance manifests.
fn ba_code(ctx: &Context) -> String {
    match &ctx.source {
        DemandSource::Site(state) => Fleet::meta_us()
            .site(state)
            .map(|site| site.ba().code().to_string())
            .unwrap_or_else(|| state.clone()),
        DemandSource::Constant { ba, .. } => ba.code().to_string(),
    }
}

/// The manifest `kind` string for a request's wire kind.
fn manifest_kind(kind: ComputeKind) -> &'static str {
    match kind {
        ComputeKind::Evaluate => "evaluate",
        ComputeKind::Explore => "explore",
        ComputeKind::Optimal => "optimal",
    }
}

/// Assembles the provenance manifest for a request whose evaluations are
/// in hand (the buffered paths). The input hash covers the request's
/// canonical key — the same string that is the cache/coalescing identity.
pub fn request_manifest(req: &ComputeRequest, evaluations: &[EvaluatedDesign]) -> Manifest {
    let ctx = req.context();
    provenance::build_manifest(
        manifest_kind(req.kind()),
        &ba_code(ctx),
        req.strategy().canonical_key(),
        &[ctx.year],
        &[ctx.seed],
        &req.canonical_key(),
        evaluations,
    )
}

/// Assembles the provenance manifest for a streamed `/explore` sweep from
/// the result digest a [`provenance::ResultHasher`] accumulated while the
/// groups went out. Produces bytes identical to [`request_manifest`] over
/// the same evaluations.
pub fn streamed_explore_manifest(req: &ComputeRequest, result_hash: String) -> Manifest {
    let ctx = req.context();
    provenance::manifest_with_result_hash(
        manifest_kind(req.kind()),
        &ba_code(ctx),
        req.strategy().canonical_key(),
        &[ctx.year],
        &[ctx.seed],
        &req.canonical_key(),
        result_hash,
    )
}

/// Renders a manifest as its wire object. Field order and spelling are
/// pinned to match [`Manifest::to_json`] byte-for-byte, so the inline
/// `manifest` block, the `GET /manifest/<hash>` body, and the manifests
/// committed in benchmark files are all the same bytes.
pub fn manifest_json(manifest: &Manifest) -> Json {
    Json::obj(vec![
        ("schema", Json::Num(f64::from(manifest.schema))),
        ("kind", Json::string(manifest.kind.as_str())),
        ("ba", Json::string(manifest.ba.as_str())),
        ("strategy", Json::string(manifest.strategy.as_str())),
        (
            "years",
            Json::Arr(
                manifest
                    .years
                    .iter()
                    .map(|&y| Json::Num(f64::from(y)))
                    .collect(),
            ),
        ),
        (
            "seeds",
            Json::Arr(
                manifest
                    .seeds
                    .iter()
                    .map(|&s| Json::Num(s as f64))
                    .collect(),
            ),
        ),
        (
            "code_fingerprint",
            Json::string(manifest.code_fingerprint.as_str()),
        ),
        ("input_hash", Json::string(manifest.input_hash.as_str())),
        ("result_hash", Json::string(manifest.result_hash.as_str())),
    ])
}

/// Decodes a wire manifest object back into a [`Manifest`] — the inverse
/// of [`manifest_json`]. The bench `--check` modes use this to lift the
/// manifests committed inside `BENCH_*.json` artifacts back into typed
/// records so `ce_manifest::verify` can re-derive them.
///
/// # Errors
///
/// A message naming the first missing or mistyped field.
pub fn manifest_from_json(json: &Json) -> Result<Manifest, String> {
    let str_field = |name: &str| {
        json.get(name)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("manifest.{name}: missing or not a string"))
    };
    let num_list = |name: &str| {
        json.get(name)
            .and_then(Json::as_array)
            .ok_or_else(|| format!("manifest.{name}: missing or not an array"))?
            .iter()
            .map(Json::as_f64)
            .collect::<Option<Vec<f64>>>()
            .ok_or_else(|| format!("manifest.{name}: non-numeric entry"))
    };
    let schema = json
        .get("schema")
        .and_then(Json::as_f64)
        .ok_or_else(|| "manifest.schema: missing or not a number".to_string())?;
    Ok(Manifest {
        schema: schema as u32,
        kind: str_field("kind")?,
        ba: str_field("ba")?,
        strategy: str_field("strategy")?,
        years: num_list("years")?.iter().map(|&y| y as i32).collect(),
        seeds: num_list("seeds")?.iter().map(|&s| s as u64).collect(),
        code_fingerprint: str_field("code_fingerprint")?,
        input_hash: str_field("input_hash")?,
        result_hash: str_field("result_hash")?,
    })
}

/// The closing fragment of a streamed `/explore` body.
pub const EXPLORE_SUFFIX: &str = "]}";

/// The closing fragment of a manifest-bearing streamed `/explore` body:
/// closes the results array, then carries the `manifest` block the
/// buffered encoding would have placed after it.
pub fn explore_suffix_with_manifest(manifest: &Manifest) -> String {
    let mut suffix = String::from("],\"manifest\":");
    suffix.push_str(&manifest_json(manifest).encode());
    suffix.push('}');
    suffix
}

/// The opening fragment of a streamed `/explore` body: everything before
/// the first result. Built from the same [`Json`] encoders the buffered
/// path uses, so `explore_prefix + fragments… + `[`EXPLORE_SUFFIX`]`
/// concatenates to exactly the bytes [`execute`] would have encoded.
pub fn explore_prefix(strategy: StrategyKind, count: usize) -> String {
    let mut prefix = String::from("{\"strategy\":");
    prefix.push_str(&Json::string(strategy.canonical_key()).encode());
    prefix.push_str(",\"count\":");
    prefix.push_str(&Json::Num(count as f64).encode());
    prefix.push_str(",\"results\":[");
    prefix
}

/// One supply group's worth of a streamed `/explore` body: the
/// evaluations encoded and comma-joined, with a leading comma when the
/// group is not the first (array elements are comma-separated, and the
/// previous fragment ended mid-array).
pub fn explore_group_fragment(evals: &[EvaluatedDesign], first: bool) -> String {
    let mut fragment = String::new();
    for (i, eval) in evals.iter().enumerate() {
        if !first || i > 0 {
            fragment.push(',');
        }
        fragment.push_str(&evaluation_json(eval).encode());
    }
    fragment
}

/// Executes a validated request against an explorer. Pure: same request +
/// same explorer → byte-identical [`Json::encode`] output, fresh or not.
pub fn execute(req: &ComputeRequest, explorer: &CarbonExplorer, scratch: &mut EvalScratch) -> Json {
    execute_with_manifest(req, explorer, scratch).0
}

/// [`execute`], also returning the provenance manifest when the request
/// opted in (`"manifest": true`). The manifest is both embedded in the
/// response (a trailing `manifest` field) and returned separately so the
/// server can register it for `GET /manifest/<result_hash>` lookups.
pub fn execute_with_manifest(
    req: &ComputeRequest,
    explorer: &CarbonExplorer,
    scratch: &mut EvalScratch,
) -> (Json, Option<Manifest>) {
    match req {
        ComputeRequest::Evaluate {
            strategy,
            design,
            manifest,
            ..
        } => {
            let eval = explorer.evaluate_with(*strategy, design, scratch);
            let mut json = evaluation_json(&eval);
            let built = manifest.then(|| request_manifest(req, std::slice::from_ref(&eval)));
            if let (Some(m), Json::Obj(fields)) = (&built, &mut json) {
                fields.push(("manifest".to_string(), manifest_json(m)));
            }
            (json, built)
        }
        ComputeRequest::Explore {
            strategy,
            space,
            manifest,
            ..
        } => {
            let results = explorer.explore(*strategy, space);
            let count = results.len();
            let built = manifest.then(|| request_manifest(req, &results));
            let mut fields = vec![
                ("strategy", Json::string(strategy.canonical_key())),
                ("count", Json::Num(count as f64)),
                (
                    "results",
                    Json::Arr(results.iter().map(evaluation_json).collect()),
                ),
            ];
            if let Some(m) = &built {
                fields.push(("manifest", manifest_json(m)));
            }
            (Json::obj(fields), built)
        }
        ComputeRequest::Optimal {
            strategy,
            space,
            refine_rounds,
            ..
        } => {
            let best = if *refine_rounds > 0 {
                explorer.optimal_refined(*strategy, space, *refine_rounds)
            } else {
                explorer.optimal(*strategy, space)
            };
            let json = match best {
                Some(best) => Json::obj(vec![
                    ("strategy", Json::string(strategy.canonical_key())),
                    ("found", Json::Bool(true)),
                    ("best", evaluation_json(&best)),
                ]),
                None => Json::obj(vec![
                    ("strategy", Json::string(strategy.canonical_key())),
                    ("found", Json::Bool(false)),
                ]),
            };
            (json, None)
        }
    }
}

/// The `GET /scenarios` body: the paper's supply scenarios and the four
/// strategies, each with its stable wire key and display label.
pub fn scenarios_json() -> Json {
    let scenarios = Scenario::ALL
        .iter()
        .map(|s| {
            Json::obj(vec![
                ("key", Json::string(s.canonical_key())),
                ("label", Json::string(s.label())),
            ])
        })
        .collect();
    let strategies = StrategyKind::ALL
        .iter()
        .map(|s| {
            Json::obj(vec![
                ("key", Json::string(s.canonical_key())),
                ("label", Json::string(s.label())),
                ("uses_battery", Json::Bool(s.uses_battery())),
                ("uses_cas", Json::Bool(s.uses_cas())),
            ])
        })
        .collect();
    Json::obj(vec![
        ("scenarios", Json::Arr(scenarios)),
        ("strategies", Json::Arr(strategies)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_eval(body: &str) -> Result<ComputeRequest, RequestError> {
        ComputeRequest::parse(
            ComputeKind::Evaluate,
            &Json::parse(body).expect("valid JSON"),
            &Limits::default(),
        )
    }

    #[test]
    fn evaluate_parses_with_defaults() {
        let req = parse_eval(
            r#"{"site":"UT","strategy":"renewables_battery","design":{"solar_mw":100,"battery_mwh":50}}"#,
        )
        .expect("parses");
        let ComputeRequest::Evaluate {
            ctx,
            strategy,
            design,
            manifest,
        } = &req
        else {
            panic!("wrong variant");
        };
        assert_eq!(ctx.year, 2020);
        assert_eq!(ctx.seed, 7);
        assert_eq!(*strategy, StrategyKind::RenewablesBattery);
        assert_eq!(design.solar_mw, 100.0);
        assert_eq!(design.wind_mw, 0.0);
        assert_eq!(design.battery_mwh, 50.0);
        assert!(!manifest, "manifest defaults to off");
        assert_eq!(req.endpoint(), Endpoint::Evaluate);
    }

    #[test]
    fn canonical_key_ignores_field_order_and_spelled_defaults() {
        let a =
            parse_eval(r#"{"site":"UT","strategy":"renewables_only","design":{"solar_mw":100}}"#)
                .expect("parses");
        let b = parse_eval(
            r#"{"design":{"wind_mw":0,"solar_mw":100.0},"year":2020,"seed":7,"strategy":"renewables_only","site":"UT"}"#,
        )
        .expect("parses");
        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn canonical_key_distinguishes_every_axis() {
        let base = r#"{"site":"UT","strategy":"renewables_only","design":{"solar_mw":100}}"#;
        let variants = [
            r#"{"site":"NE","strategy":"renewables_only","design":{"solar_mw":100}}"#,
            r#"{"site":"UT","strategy":"renewables_cas","design":{"solar_mw":100}}"#,
            r#"{"site":"UT","strategy":"renewables_only","design":{"solar_mw":101}}"#,
            r#"{"site":"UT","strategy":"renewables_only","design":{"solar_mw":100},"seed":8}"#,
            r#"{"site":"UT","strategy":"renewables_only","design":{"solar_mw":100},"year":2021}"#,
        ];
        let base_key = parse_eval(base).expect("parses").canonical_key();
        for v in variants {
            assert_ne!(
                parse_eval(v).expect("parses").canonical_key(),
                base_key,
                "{v} collided"
            );
        }
    }

    #[test]
    fn rejections_carry_the_right_status() {
        let cases = [
            (r#"[1,2]"#, 400),
            (r#"{"strategy":"renewables_only","design":{}}"#, 400), // no site/ba
            (
                r#"{"site":"UT","ba":"PACE","strategy":"renewables_only","design":{}}"#,
                400,
            ),
            (
                r#"{"site":"ZZ","strategy":"renewables_only","design":{}}"#,
                404,
            ),
            (r#"{"site":"UT","strategy":"nope","design":{}}"#, 422),
            (r#"{"site":"UT","strategy":"renewables_only"}"#, 400), // no design
            (
                r#"{"site":"UT","strategy":"renewables_only","design":{"solar_mw":-1}}"#,
                422,
            ),
            (
                r#"{"site":"UT","strategy":"renewables_only","design":{},"year":1200}"#,
                422,
            ),
            (
                r#"{"site":"UT","strategy":"renewables_only","design":{},"seed":1.5}"#,
                400,
            ),
            (
                r#"{"ba":"PACE","strategy":"renewables_only","design":{}}"#,
                400,
            ), // no demand_mw
            (
                r#"{"ba":"XXXX","demand_mw":10,"strategy":"renewables_only","design":{}}"#,
                422,
            ),
            (
                r#"{"ba":"PACE","demand_mw":0,"strategy":"renewables_only","design":{}}"#,
                422,
            ),
        ];
        for (body, status) in cases {
            let err = parse_eval(body).expect_err(body);
            assert_eq!(err.status, status, "{body} → {}", err.message);
        }
    }

    #[test]
    fn space_limits_apply_after_strategy_restriction() {
        let limits = Limits::default();
        let body = Json::parse(
            r#"{"site":"UT","strategy":"renewables_only",
                "space":{"solar":[0,100,64],"wind":[0,100,64],
                         "battery":[0,10,512],"extra_capacity":[0,1,512]}}"#,
        )
        .expect("valid JSON");
        // 64×64 = 4096 effective points: battery/extra axes collapse for
        // renewables_only, so this fits exactly.
        let req = ComputeRequest::parse(ComputeKind::Explore, &body, &limits).expect("fits");
        assert_eq!(req.endpoint(), Endpoint::Explore);
        // The same space under a battery strategy multiplies in the
        // battery axis and blows the budget.
        let body = Json::parse(
            r#"{"site":"UT","strategy":"renewables_battery",
                "space":{"solar":[0,100,64],"wind":[0,100,64],
                         "battery":[0,10,512],"extra_capacity":[0,1,512]}}"#,
        )
        .expect("valid JSON");
        let err = ComputeRequest::parse(ComputeKind::Explore, &body, &limits).expect_err("over");
        assert_eq!(err.status, 422);
    }

    #[test]
    fn axis_validation() {
        let limits = Limits::default();
        for (axis, status) in [
            (r#"{"solar":[0,100]}"#, 400),
            (r#"{"solar":[100,0,5]}"#, 422),
            (r#"{"solar":[0,100,0]}"#, 422),
            (r#"{"solar":[0,100,513]}"#, 422),
            (r#"{"solar":"wide"}"#, 400),
        ] {
            let body = Json::parse(&format!(
                r#"{{"site":"UT","strategy":"renewables_only","space":{axis}}}"#
            ))
            .expect("valid JSON");
            let err = ComputeRequest::parse(ComputeKind::Explore, &body, &limits).expect_err(axis);
            assert_eq!(err.status, status, "{axis}");
        }
    }

    #[test]
    fn optimal_refine_rounds_are_bounded() {
        let limits = Limits::default();
        let body = Json::parse(
            r#"{"site":"UT","strategy":"renewables_only","space":{"solar":[0,100,3]},"refine_rounds":99}"#,
        )
        .expect("valid JSON");
        let err = ComputeRequest::parse(ComputeKind::Optimal, &body, &limits).expect_err("over");
        assert_eq!(err.status, 422);
    }

    #[test]
    fn context_keys_separate_site_and_constant_sources() {
        let site = Context {
            source: DemandSource::Site("UT".to_string()),
            year: 2020,
            seed: 7,
        };
        let constant = Context {
            source: DemandSource::Constant {
                ba: BalancingAuthority::PACE,
                demand_mw: 25.0,
            },
            year: 2020,
            seed: 7,
        };
        assert_ne!(site.canonical_key(), constant.canonical_key());
        assert!(site.canonical_key().contains("site=UT"));
        assert!(constant.canonical_key().contains("ba=PACE"));
    }

    #[test]
    fn explorer_cache_hits_and_evicts() {
        let cache = ExplorerCache::new(1);
        let ut = Context {
            source: DemandSource::Constant {
                ba: BalancingAuthority::PACE,
                demand_mw: 5.0,
            },
            year: 2020,
            seed: 7,
        };
        let first = cache.get_or_build(&ut).expect("builds");
        let second = cache.get_or_build(&ut).expect("cached");
        assert!(
            Arc::ptr_eq(&first, &second),
            "hit returns the same explorer"
        );
        assert_eq!(cache.entry_count(), 1);
        let other = Context {
            seed: 8,
            ..ut.clone()
        };
        let _ = cache.get_or_build(&other).expect("builds");
        assert_eq!(
            cache.entry_count(),
            1,
            "capacity 1 evicts the older context"
        );
        let rebuilt = cache.get_or_build(&ut).expect("rebuilds");
        assert!(!Arc::ptr_eq(&first, &rebuilt), "evicted context rebuilds");
    }

    #[test]
    fn execute_matches_direct_library_calls_bitwise() {
        let ctx = Context {
            source: DemandSource::Constant {
                ba: BalancingAuthority::PACE,
                demand_mw: 5.0,
            },
            year: 2020,
            seed: 7,
        };
        let explorer = build_explorer(&ctx).expect("builds");
        let design = DesignPoint {
            solar_mw: 40.0,
            wind_mw: 15.0,
            battery_mwh: 30.0,
            extra_capacity_fraction: 0.0,
        };
        let req = ComputeRequest::Evaluate {
            ctx,
            strategy: StrategyKind::RenewablesBattery,
            design,
            manifest: false,
        };
        let mut scratch = EvalScratch::default();
        let served = execute(&req, &explorer, &mut scratch).encode();
        let direct = evaluation_json(&explorer.evaluate_with(
            StrategyKind::RenewablesBattery,
            &design,
            &mut EvalScratch::default(),
        ))
        .encode();
        assert_eq!(served, direct);
        // And the metric values round-trip bit-exactly through the wire.
        let parsed = Json::parse(&served).expect("parses");
        let eval = explorer.evaluate_with(
            StrategyKind::RenewablesBattery,
            &design,
            &mut EvalScratch::default(),
        );
        for (name, value) in eval.canonical_fields() {
            let wire = parsed.get(name).and_then(Json::as_f64).expect(name);
            assert_eq!(wire.to_bits(), value.to_bits(), "{name}");
        }
    }

    #[test]
    fn streamed_fragments_concatenate_to_the_buffered_encoding() {
        let ctx = Context {
            source: DemandSource::Constant {
                ba: BalancingAuthority::PACE,
                demand_mw: 5.0,
            },
            year: 2020,
            seed: 7,
        };
        let explorer = build_explorer(&ctx).expect("builds");
        let strategy = StrategyKind::RenewablesBattery;
        let space = DesignSpace {
            solar: (0.0, 100.0, 3),
            wind: (0.0, 100.0, 2),
            battery: (0.0, 50.0, 4),
            extra_capacity: (0.0, 0.0, 1),
        };
        let req = ComputeRequest::Explore {
            ctx,
            strategy,
            space: space.clone(),
            manifest: false,
        };
        let count = req.explore_points().expect("explore");
        assert_eq!(count, 3 * 2 * 4);
        let buffered = execute(&req, &explorer, &mut EvalScratch::default()).encode();

        let mut streamed = explore_prefix(strategy, count);
        let mut first = true;
        explorer.explore_groups(strategy, &space, |block| {
            streamed.push_str(&explore_group_fragment(block, first));
            first = false;
        });
        streamed.push_str(EXPLORE_SUFFIX);
        assert_eq!(streamed, buffered, "fragment concatenation differs");
    }

    #[test]
    fn manifest_flag_parses_and_keys_distinctly() {
        let plain =
            parse_eval(r#"{"site":"UT","strategy":"renewables_only","design":{"solar_mw":100}}"#)
                .expect("parses");
        let flagged = parse_eval(
            r#"{"site":"UT","strategy":"renewables_only","design":{"solar_mw":100},"manifest":true}"#,
        )
        .expect("parses");
        let spelled_off = parse_eval(
            r#"{"site":"UT","strategy":"renewables_only","design":{"solar_mw":100},"manifest":false}"#,
        )
        .expect("parses");
        assert!(flagged.wants_manifest());
        assert!(!plain.wants_manifest());
        assert_ne!(
            plain.canonical_key(),
            flagged.canonical_key(),
            "a manifest-bearing response has different bytes, so it needs its own key"
        );
        assert_eq!(
            plain.canonical_key(),
            spelled_off.canonical_key(),
            "a spelled-out `manifest: false` is the default"
        );
        let err = parse_eval(
            r#"{"site":"UT","strategy":"renewables_only","design":{},"manifest":"yes"}"#,
        )
        .expect_err("non-boolean manifest");
        assert_eq!(err.status, 400);
    }

    #[test]
    fn manifest_wire_encoding_matches_the_crate_canonical_json() {
        let req = parse_eval(
            r#"{"site":"UT","strategy":"renewables_battery","design":{"solar_mw":100,"battery_mwh":50},"manifest":true}"#,
        )
        .expect("parses");
        let explorer = build_explorer(req.context()).expect("builds");
        let (_, manifest) = execute_with_manifest(&req, &explorer, &mut EvalScratch::default());
        let manifest = manifest.expect("manifest requested");
        assert_eq!(
            manifest_json(&manifest).encode(),
            manifest.to_json(),
            "served manifest bytes must equal ce-manifest's canonical JSON"
        );
        // And the decoder inverts the encoder: parse the wire bytes back
        // into a typed record and land on the same manifest.
        let parsed = Json::parse(&manifest.to_json()).expect("wire manifest parses");
        assert_eq!(manifest_from_json(&parsed), Ok(manifest));
    }

    #[test]
    fn evaluate_manifest_verifies_against_recomputation() {
        let req = parse_eval(
            r#"{"site":"UT","strategy":"renewables_battery","design":{"solar_mw":100,"battery_mwh":50},"manifest":true}"#,
        )
        .expect("parses");
        let explorer = build_explorer(req.context()).expect("builds");
        let (json, manifest) = execute_with_manifest(&req, &explorer, &mut EvalScratch::default());
        let manifest = manifest.expect("manifest requested");
        assert_eq!(manifest.kind, "evaluate");
        assert_eq!(manifest.ba, "PACE", "UT's grid is PACE");
        assert_eq!(manifest.years, vec![2020]);
        assert_eq!(manifest.seeds, vec![7]);
        // The embedded block carries the same hashes.
        let block = json.get("manifest").expect("embedded manifest block");
        assert_eq!(
            block.get("result_hash").and_then(Json::as_str),
            Some(manifest.result_hash.as_str())
        );
        // Recomputing the evaluation from scratch reproduces both hashes.
        let ComputeRequest::Evaluate {
            strategy, design, ..
        } = &req
        else {
            panic!("wrong variant");
        };
        let fresh = explorer.evaluate_with(*strategy, design, &mut EvalScratch::default());
        assert_eq!(
            ce_manifest::verify(&manifest, |_| provenance::recomputed(
                &req.canonical_key(),
                std::slice::from_ref(&fresh)
            )),
            Ok(())
        );
    }

    #[test]
    fn manifest_streamed_fragments_concatenate_to_the_buffered_encoding() {
        let ctx = Context {
            source: DemandSource::Constant {
                ba: BalancingAuthority::PACE,
                demand_mw: 5.0,
            },
            year: 2020,
            seed: 7,
        };
        let explorer = build_explorer(&ctx).expect("builds");
        let strategy = StrategyKind::RenewablesBattery;
        let space = DesignSpace {
            solar: (0.0, 100.0, 3),
            wind: (0.0, 100.0, 2),
            battery: (0.0, 50.0, 4),
            extra_capacity: (0.0, 0.0, 1),
        };
        let req = ComputeRequest::Explore {
            ctx,
            strategy,
            space: space.clone(),
            manifest: true,
        };
        let count = req.explore_points().expect("explore");
        let (buffered, buffered_manifest) =
            execute_with_manifest(&req, &explorer, &mut EvalScratch::default());
        let buffered = buffered.encode();
        let buffered_manifest = buffered_manifest.expect("manifest requested");

        // The streamed path hashes group-by-group alongside the fragments.
        let mut streamed = explore_prefix(strategy, count);
        let mut first = true;
        let mut hasher = provenance::ResultHasher::new();
        explorer.explore_groups(strategy, &space, |block| {
            hasher.absorb(block);
            streamed.push_str(&explore_group_fragment(block, first));
            first = false;
        });
        let manifest = streamed_explore_manifest(&req, hasher.finish_hex());
        assert_eq!(manifest, buffered_manifest, "streamed manifest differs");
        streamed.push_str(&explore_suffix_with_manifest(&manifest));
        assert_eq!(streamed, buffered, "fragment concatenation differs");
    }

    #[test]
    fn manifest_store_is_bounded_and_content_addressed() {
        let store = ManifestStore::new(2);
        store.insert("aaaa", Arc::from("{\"a\":1}"));
        store.insert("bbbb", Arc::from("{\"b\":2}"));
        assert_eq!(store.entry_count(), 2);
        assert_eq!(store.get("aaaa").as_deref(), Some("{\"a\":1}"));
        // Re-registering the same hash never replaces the body.
        store.insert("aaaa", Arc::from("{\"a\":999}"));
        assert_eq!(store.get("aaaa").as_deref(), Some("{\"a\":1}"));
        assert_eq!(store.entry_count(), 2);
        // A third distinct hash evicts the oldest.
        store.insert("cccc", Arc::from("{\"c\":3}"));
        assert_eq!(store.entry_count(), 2);
        assert!(store.get("aaaa").is_none(), "oldest entry evicted");
        assert!(store.get("cccc").is_some());
    }

    #[test]
    fn scenarios_json_lists_canonical_keys() {
        let json = scenarios_json();
        let scenarios = json.get("scenarios").and_then(Json::as_array).expect("arr");
        assert_eq!(scenarios.len(), Scenario::ALL.len());
        assert_eq!(
            scenarios[0].get("key").and_then(Json::as_str),
            Some("grid_mix")
        );
        let strategies = json
            .get("strategies")
            .and_then(Json::as_array)
            .expect("arr");
        assert_eq!(strategies.len(), StrategyKind::ALL.len());
        for s in strategies {
            let key = s.get("key").and_then(Json::as_str).expect("key");
            assert!(StrategyKind::from_canonical_key(key).is_some(), "{key}");
        }
    }
}
