//! Server configuration, shard/worker wiring, and lifecycle management.
//!
//! # Architecture
//!
//! ```text
//!                       shared nonblocking TcpListener
//!                      ╱            │                ╲
//!            shard 0 event loop   shard 1 …    shard N-1   (one thread
//!            ┌─────────────────────────────┐               each; see
//!            │ poll(2) readiness loop      │               [`crate::event`])
//!            │ conn slab · incremental     │
//!            │ HTTP parse · raw-bytes memo │──sync──► GET endpoints,
//!            │ LRU cache shard · inflight  │          cache hits, errors
//!            └──────────┬──────────────────┘
//!               bounded │ queue (per shard)       completions ▲ + waker
//!                       ▼                                     │
//!            shard-pinned workers (own EvalScratch) ──────────┘
//!            buffered results, or chunk-by-chunk streamed /explore
//! ```
//!
//! Each shard's event loop exclusively owns its connections, response
//! cache, raw-request memo, and in-flight map — the hot path takes no
//! locks. Workers are pinned to shards (at least one each) and hand
//! results back through the shard's completion queue plus waker socket.
//!
//! # Determinism
//!
//! Compute responses are bitwise identical whether served fresh, from the
//! response cache, or by coalescing — the body is encoded once by the
//! worker and shared as `Arc<str>`. Streamed `/explore` responses carry
//! the same bytes: the fragment sequence (prefix, one fragment per supply
//! group, suffix) concatenates to exactly the buffered encoding, and the
//! fragment boundaries are cached so a replay frames identical HTTP
//! chunks. Cache disposition is reported in the `x-ce-cache` header
//! (`miss` / `hit` / `coalesced`), never in the body. Workers run the
//! engine through [`ce_parallel::run_serial`], trading intra-request
//! parallelism for across-request parallelism without oversubscribing.

use crate::event::{event_loop, Completion, Waker};
use crate::json::Json;
use crate::metrics::{Metrics, ShardStats};
use crate::queue::BoundedQueue;
use crate::request::{
    execute_with_manifest, explore_group_fragment, explore_prefix, explore_suffix_with_manifest,
    manifest_json, scenarios_json, streamed_explore_manifest, ComputeRequest, ExplorerCache,
    Limits, ManifestStore, RequestError,
};
use ce_core::EvalScratch;
use std::cell::Cell;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs. `Default` suits tests and small deployments.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`ServerHandle::addr`]).
    pub addr: String,
    /// Compute worker threads (minimum 1; raised to the shard count so
    /// every shard has at least one pinned worker).
    pub workers: usize,
    /// Bounded job-queue capacity *per shard*; beyond it requests are
    /// shed with 429.
    pub queue_capacity: usize,
    /// Total response-cache capacity (entries), divided across shards.
    pub cache_capacity: usize,
    /// Event-loop shards. `0` means one per available core; the default
    /// is 1, which keeps single-process behavior fully deterministic
    /// (every connection shares one cache and coalescing domain).
    pub event_shards: usize,
    /// How many built [`ce_core::CarbonExplorer`]s to keep.
    pub explorer_cache_capacity: usize,
    /// Largest accepted request body, bytes (larger ⇒ 413 at the header,
    /// before any body byte is buffered).
    pub max_body_bytes: usize,
    /// Concurrent connections beyond which new ones get 503.
    pub max_connections: usize,
    /// Design-space validation limits.
    pub limits: Limits,
    /// How long a connection may stall mid-request (head or body started
    /// but unfinished) before it is closed with 408 — the slow-loris
    /// guard. Also bounds write-stalled peers.
    pub read_timeout: Duration,
    /// How long an idle keep-alive connection (no request in progress)
    /// may sit before being closed.
    pub idle_timeout: Duration,
    /// How long a request waits for its computation before giving up
    /// with 504.
    pub compute_timeout: Duration,
    /// `/explore` sweeps with at least this many design points stream as
    /// `transfer-encoding: chunked`, one fragment per supply group,
    /// instead of buffering the whole body first.
    pub stream_threshold_points: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 256,
            event_shards: 1,
            explorer_cache_capacity: 4,
            max_body_bytes: 64 * 1024,
            max_connections: 64,
            limits: Limits::default(),
            read_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(60),
            compute_timeout: Duration::from_secs(120),
            stream_threshold_points: 2048,
        }
    }
}

/// A queued computation, owned by one shard's worker feed.
pub(crate) struct Job {
    /// Canonical scenario key (the coalescing/caching identity).
    pub(crate) key: Arc<str>,
    /// The validated request.
    pub(crate) request: ComputeRequest,
    /// Stream the result as chunked fragments instead of one body.
    pub(crate) stream: bool,
}

/// Cross-thread state for one shard: its worker feed, its completion
/// mailbox, and the gauges its event loop publishes for `/stats`.
pub(crate) struct ShardShared {
    /// Worker feed for this shard.
    pub(crate) queue: BoundedQueue<Job>,
    /// Results (and stream fragments) headed back to the event loop.
    pub(crate) completions: Mutex<VecDeque<Completion>>,
    /// Wakes the event loop when a completion lands.
    pub(crate) waker: Waker,
    /// Event-loop counters for `/stats`.
    pub(crate) stats: ShardStats,
    /// Connections currently owned by this shard.
    pub(crate) connections: AtomicU64,
    /// In-flight computation keys (published by the event loop).
    pub(crate) inflight_keys: AtomicU64,
    /// Response-cache entries (published by the event loop).
    pub(crate) cache_entries: AtomicU64,
}

impl ShardShared {
    /// Enqueues a completion and wakes the shard's event loop.
    pub(crate) fn push_completion(&self, completion: Completion) {
        self.completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(completion);
        self.waker.wake();
    }
}

/// State shared by every shard and worker.
pub(crate) struct Shared {
    pub(crate) config: ServerConfig,
    pub(crate) metrics: Metrics,
    pub(crate) explorers: ExplorerCache,
    pub(crate) shards: Vec<Arc<ShardShared>>,
    pub(crate) shutdown: AtomicBool,
    /// Connections across all shards (the 503 admission gauge).
    pub(crate) connections: AtomicU64,
    pub(crate) busy_workers: AtomicU64,
    /// `GET /scenarios` body, encoded once at startup.
    pub(crate) scenarios: Arc<str>,
    /// Served provenance manifests, content-addressed by result hash
    /// (`GET /manifest/<hash>`).
    pub(crate) manifests: ManifestStore,
}

/// A running server. Dropping the handle shuts the server down; call
/// [`ServerHandle::shutdown`] to do it explicitly.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    event_threads: Vec<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

fn shard_count(config: &ServerConfig) -> usize {
    if config.event_shards == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        config.event_shards
    }
}

/// Binds, spawns the event-loop shards and their pinned workers, and
/// returns a handle.
///
/// # Errors
///
/// I/O errors from binding the listener address or building the per-shard
/// waker socket pairs.
pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(config.addr.as_str())?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shards = shard_count(&config);
    let queue_capacity = config.queue_capacity;
    let mut shard_shared = Vec::with_capacity(shards);
    let mut waker_rxs = Vec::with_capacity(shards);
    for _ in 0..shards {
        // A loopback socket pair is the waker: dependency-free, pollable
        // alongside the listener and connections.
        let pair = TcpListener::bind("127.0.0.1:0")?;
        let tx = TcpStream::connect(pair.local_addr()?)?;
        let (rx, _) = pair.accept()?;
        tx.set_nonblocking(true)?;
        tx.set_nodelay(true)?;
        rx.set_nonblocking(true)?;
        waker_rxs.push(rx);
        shard_shared.push(Arc::new(ShardShared {
            queue: BoundedQueue::new(queue_capacity),
            completions: Mutex::new(VecDeque::new()),
            waker: Waker::new(tx),
            stats: ShardStats::default(),
            connections: AtomicU64::new(0),
            inflight_keys: AtomicU64::new(0),
            cache_entries: AtomicU64::new(0),
        }));
    }
    let shared = Arc::new(Shared {
        metrics: Metrics::new(),
        explorers: ExplorerCache::new(config.explorer_cache_capacity),
        shards: shard_shared,
        shutdown: AtomicBool::new(false),
        connections: AtomicU64::new(0),
        busy_workers: AtomicU64::new(0),
        scenarios: scenarios_json().encode_arc(),
        manifests: ManifestStore::new(config.cache_capacity.max(64)),
        config,
    });
    // Every shard gets at least one pinned worker; extras round-robin.
    let workers = shared.config.workers.max(1).max(shards);
    let worker_threads = (0..workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared, i % shards))
        })
        .collect();
    let event_threads = waker_rxs
        .into_iter()
        .enumerate()
        .map(|(index, rx)| {
            let shared = Arc::clone(&shared);
            let listener = listener.try_clone()?;
            Ok(std::thread::spawn(move || {
                event_loop(shared, index, listener, rx)
            }))
        })
        .collect::<io::Result<Vec<_>>>()?;
    drop(listener); // shards hold their own clones; the last one out unbinds
    Ok(ServerHandle {
        addr,
        shared,
        event_threads,
        worker_threads,
    })
}

impl ServerHandle {
    /// The bound address (the actual port when configured with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, let workers drain every job
    /// already queued (waiters get their responses), flush what the event
    /// loops still owe, then join every server thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        // ce:ordering(acquire pairs with the loops' flag reads; release publishes pre-shutdown writes; no total order needed)
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Refuse new jobs but let workers drain accepted ones.
        for shard in &self.shared.shards {
            shard.queue.close();
        }
        for shard in &self.shared.shards {
            shard.waker.wake();
        }
        for handle in self.worker_threads.drain(..) {
            let _ = handle.join();
        }
        // Workers are done; every completion is queued. Wake the loops a
        // final time so none sleeps through the flag.
        for shard in &self.shared.shards {
            shard.waker.wake();
        }
        for handle in self.event_threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Runs one shard-pinned compute worker until its queue closes and
/// drains.
// ce:entry
pub(crate) fn worker_loop(shared: &Arc<Shared>, shard_index: usize) {
    let shard = &shared.shards[shard_index];
    let mut scratch = EvalScratch::default();
    while let Some(job) = shard.queue.pop() {
        // ce:ordering(busy-worker gauge feeds /stats only; no synchronization hangs off it)
        shared.busy_workers.fetch_add(1, Ordering::Relaxed);
        let endpoint = job.request.endpoint();
        let streamed_any = Cell::new(false);
        // Catch panics so coalesced waiters always get an outcome; the
        // scratch buffers are plain reusable vectors, safe to keep using.
        let result = catch_unwind(AssertUnwindSafe(|| {
            let explorer = shared.explorers.get_or_build(job.request.context())?;
            if job.stream {
                if let ComputeRequest::Explore {
                    strategy,
                    space,
                    manifest,
                    ..
                } = &job.request
                {
                    let points = job.request.explore_points().unwrap_or(0);
                    let push_fragment = |fragment: String| {
                        streamed_any.set(true);
                        shard.push_completion(Completion::Chunk {
                            key: Arc::clone(&job.key),
                            fragment: Arc::from(fragment.as_str()),
                        });
                    };
                    push_fragment(explore_prefix(*strategy, points));
                    // A manifest-bearing sweep hashes each group as it
                    // streams; the digest matches the buffered path's
                    // one-shot hash because absorption order is identical.
                    let mut hasher = manifest.then(ce_core::provenance::ResultHasher::new);
                    // Serial engine inside each worker: parallelism comes
                    // from the pool itself, and nesting thread scopes per
                    // request would oversubscribe the host.
                    ce_parallel::run_serial(|| {
                        let mut first = true;
                        explorer.explore_groups(*strategy, space, |group| {
                            if let Some(h) = hasher.as_mut() {
                                h.absorb(group);
                            }
                            push_fragment(explore_group_fragment(group, first));
                            first = false;
                        });
                    });
                    match hasher {
                        Some(hasher) => {
                            let manifest =
                                streamed_explore_manifest(&job.request, hasher.finish_hex());
                            shared
                                .manifests
                                .insert(manifest.address(), manifest_json(&manifest).encode_arc());
                            push_fragment(explore_suffix_with_manifest(&manifest));
                        }
                        None => push_fragment(crate::request::EXPLORE_SUFFIX.to_string()),
                    }
                    return Ok(None);
                }
            }
            let (json, manifest) = ce_parallel::run_serial(|| {
                execute_with_manifest(&job.request, &explorer, &mut scratch)
            });
            if let Some(manifest) = &manifest {
                shared
                    .manifests
                    .insert(manifest.address(), manifest_json(manifest).encode_arc());
            }
            Ok(Some(json.encode_arc()))
        }));
        let completion = match result {
            Ok(Ok(None)) => Completion::Done {
                key: Arc::clone(&job.key),
                status: 200,
                body: None,
                streamed: true,
            },
            Ok(Ok(Some(body))) => Completion::Done {
                key: Arc::clone(&job.key),
                status: 200,
                body: Some(body),
                streamed: false,
            },
            Ok(Err(RequestError { status, message })) => Completion::Done {
                key: Arc::clone(&job.key),
                status,
                body: Some(Json::obj(vec![("error", Json::string(message))]).encode_arc()),
                streamed: streamed_any.get(),
            },
            Err(_panic) => Completion::Done {
                key: Arc::clone(&job.key),
                status: 500,
                body: Some(Arc::from("{\"error\":\"internal computation failure\"}")),
                streamed: streamed_any.get(),
            },
        };
        shared
            .metrics
            .endpoint(endpoint)
            // ce:ordering(monotone telemetry counter; readers tolerate skew)
            .computed
            .fetch_add(1, Ordering::Relaxed);
        shard.push_completion(completion);
        // ce:ordering(busy-worker gauge feeds /stats only; no synchronization hangs off it)
        shared.busy_workers.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Renders the `/stats` body: per-endpoint counters, whole-service
/// gauges, and one object per shard with its event-loop counters.
pub(crate) fn stats_json(shared: &Shared) -> Json {
    let queue_depth: usize = shared.shards.iter().map(|s| s.queue.depth()).sum();
    let inflight: u64 = shared
        .shards
        .iter()
        // ce:ordering(stats gauge snapshot; cross-shard skew is acceptable)
        .map(|s| s.inflight_keys.load(Ordering::Relaxed))
        .sum();
    let cache_entries: u64 = shared
        .shards
        .iter()
        // ce:ordering(stats gauge snapshot; cross-shard skew is acceptable)
        .map(|s| s.cache_entries.load(Ordering::Relaxed))
        .sum();
    let mut json = shared.metrics.to_json(&[
        ("queue_depth", queue_depth as f64),
        (
            "busy_workers",
            // ce:ordering(stats gauge read; staleness is acceptable)
            shared.busy_workers.load(Ordering::Relaxed) as f64,
        ),
        (
            "connections",
            // ce:ordering(stats gauge read; staleness is acceptable)
            shared.connections.load(Ordering::Relaxed) as f64,
        ),
        ("inflight_keys", inflight as f64),
        ("response_cache_entries", cache_entries as f64),
        (
            "explorer_cache_entries",
            shared.explorers.entry_count() as f64,
        ),
        ("manifest_entries", shared.manifests.entry_count() as f64),
    ]);
    let shards = shared
        .shards
        .iter()
        .map(|s| {
            s.stats.to_json(&[
                // ce:ordering(per-shard stats gauge reads; staleness is acceptable)
                ("connections", s.connections.load(Ordering::Relaxed) as f64),
                ("queue_depth", s.queue.depth() as f64),
                (
                    // ce:ordering(stats gauge read; staleness is acceptable)
                    "inflight_keys",
                    s.inflight_keys.load(Ordering::Relaxed) as f64,
                ),
                (
                    // ce:ordering(stats gauge read; staleness is acceptable)
                    "cache_entries",
                    s.cache_entries.load(Ordering::Relaxed) as f64,
                ),
            ])
        })
        .collect();
    if let Json::Obj(fields) = &mut json {
        fields.push(("shards".to_string(), Json::Arr(shards)));
    }
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_single_shard() {
        let config = ServerConfig::default();
        assert_eq!(config.event_shards, 1);
        assert_eq!(shard_count(&config), 1);
        assert_eq!(config.stream_threshold_points, 2048);
        assert!(config.idle_timeout > config.read_timeout);
    }

    #[test]
    fn zero_shards_means_auto() {
        let config = ServerConfig {
            event_shards: 0,
            ..ServerConfig::default()
        };
        assert!(shard_count(&config) >= 1);
    }

    #[test]
    fn stats_json_reports_one_object_per_shard() {
        let config = ServerConfig {
            event_shards: 3,
            ..ServerConfig::default()
        };
        let shards = (0..3)
            .map(|_| {
                let pair = TcpListener::bind("127.0.0.1:0").expect("bind");
                let tx = TcpStream::connect(pair.local_addr().expect("addr")).expect("connect");
                Arc::new(ShardShared {
                    queue: BoundedQueue::new(4),
                    completions: Mutex::new(VecDeque::new()),
                    waker: Waker::new(tx),
                    stats: ShardStats::default(),
                    connections: AtomicU64::new(2),
                    inflight_keys: AtomicU64::new(1),
                    cache_entries: AtomicU64::new(5),
                })
            })
            .collect();
        let shared = Shared {
            metrics: Metrics::new(),
            explorers: ExplorerCache::new(1),
            shards,
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(6),
            busy_workers: AtomicU64::new(0),
            scenarios: scenarios_json().encode_arc(),
            manifests: ManifestStore::new(4),
            config,
        };
        let json = stats_json(&shared);
        assert_eq!(
            json.get("manifest_entries").and_then(Json::as_f64),
            Some(0.0)
        );
        assert_eq!(json.get("inflight_keys").and_then(Json::as_f64), Some(3.0));
        assert_eq!(
            json.get("response_cache_entries").and_then(Json::as_f64),
            Some(15.0)
        );
        let shards = json.get("shards").expect("shards array");
        let Json::Arr(items) = shards else {
            panic!("shards must be an array");
        };
        assert_eq!(items.len(), 3);
        assert_eq!(
            items[0].get("cache_entries").and_then(Json::as_f64),
            Some(5.0)
        );
        assert!(items[0].get("wakeups").is_some());
    }
}
