//! The HTTP/1.1 front end, worker pool, and lifecycle management.
//!
//! # Architecture
//!
//! ```text
//! TcpListener ── accept loop ──► one handler thread per connection
//!                                   │  parse HTTP, route
//!                                   │  GET endpoints answer inline
//!                                   ▼
//!                    response cache ──hit──► reply (bitwise-cached body)
//!                                   │ miss
//!                    in-flight map ──same key──► attach (coalesce)
//!                                   │ new key
//!                    bounded queue ──full──► 429 + Retry-After
//!                                   │
//!                    worker pool (owns EvalScratch each) ──► compute,
//!                    fill cache, publish outcome, wake all waiters
//! ```
//!
//! `GET /healthz` and `GET /stats` never touch the queue, so the service
//! stays observable while compute capacity is saturated. `POST` bodies
//! are computed by a fixed worker pool behind a *bounded* queue; a full
//! queue sheds the request with `429` instead of accepting unbounded
//! work. Identical in-flight requests (same canonical key) share one
//! computation.
//!
//! # Determinism
//!
//! Compute responses are bitwise identical whether served fresh, from the
//! response cache, or by coalescing — the body is encoded once by the
//! worker and shared as `Arc<str>`. Cache disposition is reported in the
//! `x-ce-cache` response header (`miss` / `hit` / `coalesced`)
//! specifically so it never perturbs the body bytes. Workers run the
//! engine through [`ce_parallel::run_serial`], trading intra-request
//! parallelism for across-request parallelism without oversubscribing.

use crate::cache::ShardedCache;
use crate::json::Json;
use crate::metrics::{Endpoint, Metrics};
use crate::queue::{BoundedQueue, PushError};
use crate::request::{
    execute, scenarios_json, ComputeKind, ComputeRequest, ExplorerCache, Limits, RequestError,
};
use ce_core::EvalScratch;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs. `Default` suits tests and small deployments.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`ServerHandle::addr`]).
    pub addr: String,
    /// Compute worker threads (minimum 1).
    pub workers: usize,
    /// Bounded job-queue capacity; beyond it requests are shed with 429.
    pub queue_capacity: usize,
    /// Response-cache capacity (entries).
    pub cache_capacity: usize,
    /// Response-cache shard count.
    pub cache_shards: usize,
    /// How many built [`ce_core::CarbonExplorer`]s to keep.
    pub explorer_cache_capacity: usize,
    /// Largest accepted request body, bytes.
    pub max_body_bytes: usize,
    /// Concurrent connections beyond which new ones get 503.
    pub max_connections: usize,
    /// Design-space validation limits.
    pub limits: Limits,
    /// Socket read timeout (bounds how long an idle keep-alive connection
    /// can outlive a shutdown request).
    pub read_timeout: Duration,
    /// How long a handler waits for its computation before giving up
    /// with 504.
    pub compute_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 256,
            cache_shards: 8,
            explorer_cache_capacity: 4,
            max_body_bytes: 64 * 1024,
            max_connections: 64,
            limits: Limits::default(),
            read_timeout: Duration::from_secs(5),
            compute_timeout: Duration::from_secs(120),
        }
    }
}

/// The result of one computation, published to every coalesced waiter.
#[derive(Clone)]
struct Outcome {
    status: u16,
    body: Arc<str>,
}

/// One in-flight computation: waiters block on the condvar until the
/// worker fills the slot.
struct InflightCell {
    slot: Mutex<Option<Outcome>>,
    ready: Condvar,
}

impl InflightCell {
    fn new() -> Self {
        Self {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn publish(&self, outcome: Outcome) {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        *slot = Some(outcome);
        drop(slot);
        self.ready.notify_all();
    }

    fn wait(&self, timeout: Duration) -> Option<Outcome> {
        let start = Instant::now();
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(outcome) = slot.as_ref() {
                return Some(outcome.clone());
            }
            let elapsed = start.elapsed();
            if elapsed >= timeout {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(slot, timeout - elapsed)
                .unwrap_or_else(PoisonError::into_inner);
            slot = guard;
        }
    }
}

struct Job {
    key: Arc<str>,
    request: ComputeRequest,
    cell: Arc<InflightCell>,
}

struct Shared {
    config: ServerConfig,
    metrics: Metrics,
    cache: ShardedCache,
    explorers: ExplorerCache,
    queue: BoundedQueue<Job>,
    inflight: Mutex<BTreeMap<Arc<str>, Arc<InflightCell>>>,
    shutdown: AtomicBool,
    connections: AtomicU64,
    busy_workers: AtomicU64,
}

/// A running server. Dropping the handle shuts the server down; call
/// [`ServerHandle::shutdown`] to do it explicitly.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    listener_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

/// Binds, spawns the worker pool and accept loop, and returns a handle.
///
/// # Errors
///
/// I/O errors from binding the listener address.
pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(config.addr.as_str())?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        metrics: Metrics::new(),
        cache: ShardedCache::new(config.cache_capacity, config.cache_shards),
        explorers: ExplorerCache::new(config.explorer_cache_capacity),
        queue: BoundedQueue::new(config.queue_capacity),
        inflight: Mutex::new(BTreeMap::new()),
        shutdown: AtomicBool::new(false),
        connections: AtomicU64::new(0),
        busy_workers: AtomicU64::new(0),
        config,
    });
    let worker_threads = (0..shared.config.workers.max(1))
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect();
    let listener_thread = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&listener, &shared))
    };
    Ok(ServerHandle {
        addr,
        shared,
        listener_thread: Some(listener_thread),
        worker_threads,
    })
}

impl ServerHandle {
    /// The bound address (the actual port when configured with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, let workers drain every job
    /// already queued (waiters get their responses), then join all server
    /// threads and wait briefly for connection handlers to finish.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Refuse new jobs but let workers drain accepted ones.
        self.shared.queue.close();
        // Poke the accept loop so it observes the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        if let Some(handle) = self.listener_thread.take() {
            let _ = handle.join();
        }
        for handle in self.worker_threads.drain(..) {
            let _ = handle.join();
        }
        // Handler threads are detached; give in-progress responses a
        // bounded window to flush before returning.
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.shared.connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else {
            continue;
        };
        let previous = shared.connections.fetch_add(1, Ordering::SeqCst);
        if previous >= shared.config.max_connections as u64 {
            shared.connections.fetch_sub(1, Ordering::SeqCst);
            let mut stream = stream;
            let _ = write_response(
                &mut stream,
                503,
                &[("connection", "close")],
                "{\"error\":\"connection limit reached\"}",
            );
            continue;
        }
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            handle_connection(stream, &shared);
            shared.connections.fetch_sub(1, Ordering::SeqCst);
        });
    }
}

/// One parsed HTTP request.
struct HttpRequest {
    method: String,
    path: String,
    body: Vec<u8>,
    keep_alive: bool,
}

// ce:entry
fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut leftover: Vec<u8> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match read_request(&mut stream, &mut leftover, shared.config.max_body_bytes) {
            Ok(Some(request)) => {
                let keep_alive = request.keep_alive;
                let written = respond(&mut stream, shared, &request);
                if !written || !keep_alive {
                    break;
                }
            }
            Ok(None) => break, // clean EOF between requests
            Err(e) => {
                if e.kind() == io::ErrorKind::InvalidData {
                    let _ = write_response(
                        &mut stream,
                        400,
                        &[("connection", "close")],
                        "{\"error\":\"malformed HTTP request\"}",
                    );
                }
                break;
            }
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

/// Reads one HTTP/1.1 request (head + `Content-Length` body) from the
/// stream. `leftover` carries pipelined bytes between keep-alive
/// requests. `Ok(None)` is a clean EOF before any bytes of a request.
fn read_request(
    stream: &mut TcpStream,
    leftover: &mut Vec<u8>,
    max_body: usize,
) -> io::Result<Option<HttpRequest>> {
    const MAX_HEAD_BYTES: usize = 8 * 1024;
    let head_end = loop {
        if let Some(pos) = find_subslice(leftover, b"\r\n\r\n") {
            break pos + 4;
        }
        if leftover.len() > MAX_HEAD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return if leftover.is_empty() {
                Ok(None)
            } else {
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-request",
                ))
            };
        }
        leftover.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&leftover[..head_end])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 request head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let raw_path = parts.next().unwrap_or("");
    let path = raw_path.split('?').next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed request line",
        ));
    }
    let mut content_length = 0usize;
    let mut keep_alive = version != "HTTP/1.0";
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?;
        } else if name == "connection" {
            let value = value.to_ascii_lowercase();
            if value.split(',').any(|t| t.trim() == "close") {
                keep_alive = false;
            } else if value.split(',').any(|t| t.trim() == "keep-alive") {
                keep_alive = true;
            }
        }
    }
    if content_length > max_body {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request body too large",
        ));
    }
    leftover.drain(..head_end);
    while leftover.len() < content_length {
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        leftover.extend_from_slice(&chunk[..n]);
    }
    let body: Vec<u8> = leftover.drain(..content_length).collect();
    Ok(Some(HttpRequest {
        method,
        path,
        body,
        keep_alive,
    }))
}

/// A routed response, before HTTP framing.
struct Response {
    status: u16,
    body: Arc<str>,
    /// `x-ce-cache` header value for compute endpoints.
    cache_note: Option<&'static str>,
    /// Add `Retry-After` (set when shedding with 429).
    retry_after: bool,
}

impl Response {
    fn plain(status: u16, body: impl Into<Arc<str>>) -> Self {
        Self {
            status,
            body: body.into(),
            cache_note: None,
            retry_after: false,
        }
    }

    fn error(status: u16, message: &str) -> Self {
        Self::plain(
            status,
            Json::obj(vec![("error", Json::string(message))])
                .encode()
                .as_str(),
        )
    }
}

fn respond(stream: &mut TcpStream, shared: &Arc<Shared>, request: &HttpRequest) -> bool {
    let started = Instant::now();
    let (endpoint, response) = route(shared, request);
    if let Some(endpoint) = endpoint {
        let metrics = shared.metrics.endpoint(endpoint);
        metrics.requests.fetch_add(1, Ordering::Relaxed);
        if response.status >= 400 {
            metrics.errors.fetch_add(1, Ordering::Relaxed);
        }
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        metrics.record_latency_micros(micros);
    }
    let mut headers: Vec<(&str, &str)> = Vec::new();
    if let Some(note) = response.cache_note {
        headers.push(("x-ce-cache", note));
    }
    if response.retry_after {
        headers.push(("retry-after", "1"));
    }
    write_response(stream, response.status, &headers, &response.body)
}

fn route(shared: &Arc<Shared>, request: &HttpRequest) -> (Option<Endpoint>, Response) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (
            Some(Endpoint::Healthz),
            Response::plain(200, "{\"status\":\"ok\"}"),
        ),
        ("GET", "/stats") => (
            Some(Endpoint::Stats),
            Response::plain(200, stats_json(shared).encode().as_str()),
        ),
        ("GET", "/scenarios") => (
            Some(Endpoint::Scenarios),
            Response::plain(200, scenarios_json().encode().as_str()),
        ),
        ("POST", "/evaluate") => {
            compute(shared, ComputeKind::Evaluate, Endpoint::Evaluate, request)
        }
        ("POST", "/explore") => compute(shared, ComputeKind::Explore, Endpoint::Explore, request),
        ("POST", "/optimal") => compute(shared, ComputeKind::Optimal, Endpoint::Optimal, request),
        (_, "/healthz" | "/stats" | "/scenarios" | "/evaluate" | "/explore" | "/optimal") => {
            (None, Response::error(405, "method not allowed"))
        }
        _ => (None, Response::error(404, "no such endpoint")),
    }
}

fn compute(
    shared: &Arc<Shared>,
    kind: ComputeKind,
    endpoint: Endpoint,
    request: &HttpRequest,
) -> (Option<Endpoint>, Response) {
    let metrics = shared.metrics.endpoint(endpoint);
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return (Some(endpoint), Response::error(400, "body must be UTF-8"));
    };
    let json = match Json::parse(text) {
        Ok(json) => json,
        Err(e) => {
            return (
                Some(endpoint),
                Response::error(400, &format!("invalid JSON: {e}")),
            );
        }
    };
    let parsed = match ComputeRequest::parse(kind, &json, &shared.config.limits) {
        Ok(parsed) => parsed,
        Err(RequestError { status, message }) => {
            return (Some(endpoint), Response::error(status, &message));
        }
    };
    let key = parsed.canonical_key();

    if let Some(body) = shared.cache.get(&key) {
        metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
        return (
            Some(endpoint),
            Response {
                status: 200,
                body,
                cache_note: Some("hit"),
                retry_after: false,
            },
        );
    }

    let key: Arc<str> = Arc::from(key.as_str());
    let (cell, creator) = {
        let mut inflight = shared
            .inflight
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match inflight.get(&key) {
            Some(cell) => (Arc::clone(cell), false),
            None => {
                let cell = Arc::new(InflightCell::new());
                inflight.insert(Arc::clone(&key), Arc::clone(&cell));
                (cell, true)
            }
        }
    };

    if creator {
        let job = Job {
            key: Arc::clone(&key),
            request: parsed,
            cell: Arc::clone(&cell),
        };
        if let Err(refusal) = shared.queue.try_push(job) {
            let mut inflight = shared
                .inflight
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            inflight.remove(&key);
            drop(inflight);
            return match refusal {
                PushError::Full => {
                    metrics.shed.fetch_add(1, Ordering::Relaxed);
                    let mut response = Response::error(429, "compute queue full; retry shortly");
                    response.retry_after = true;
                    (Some(endpoint), response)
                }
                PushError::Closed => (
                    Some(endpoint),
                    Response::error(503, "server is shutting down"),
                ),
            };
        }
    } else {
        metrics.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    match cell.wait(shared.config.compute_timeout) {
        Some(outcome) => (
            Some(endpoint),
            Response {
                status: outcome.status,
                body: outcome.body,
                cache_note: Some(if creator { "miss" } else { "coalesced" }),
                retry_after: false,
            },
        ),
        None => (
            Some(endpoint),
            Response::error(504, "computation timed out"),
        ),
    }
}

// ce:entry
fn worker_loop(shared: &Arc<Shared>) {
    let mut scratch = EvalScratch::default();
    while let Some(job) = shared.queue.pop() {
        shared.busy_workers.fetch_add(1, Ordering::SeqCst);
        let endpoint = job.request.endpoint();
        // Catch panics so coalesced waiters always get an outcome; the
        // scratch buffers are plain reusable vectors, safe to keep using.
        let result = catch_unwind(AssertUnwindSafe(|| {
            let explorer = shared.explorers.get_or_build(job.request.context())?;
            // Serial engine inside each worker: parallelism comes from
            // the pool itself, and nesting thread scopes per request
            // would oversubscribe the host.
            Ok(ce_parallel::run_serial(|| {
                execute(&job.request, &explorer, &mut scratch)
            }))
        }));
        let outcome = match result {
            Ok(Ok(json)) => Outcome {
                status: 200,
                body: json.encode_arc(),
            },
            Ok(Err(RequestError { status, message })) => Outcome {
                status,
                body: Json::obj(vec![("error", Json::string(message))]).encode_arc(),
            },
            Err(_panic) => Outcome {
                status: 500,
                body: Arc::from("{\"error\":\"internal computation failure\"}"),
            },
        };
        shared
            .metrics
            .endpoint(endpoint)
            .computed
            .fetch_add(1, Ordering::Relaxed);
        // Publication order matters: fill the cache first, then retire
        // the in-flight entry, then wake waiters — a request arriving at
        // any interleaving sees the result exactly once (via cache, via
        // coalescing, or by recomputing after full retirement).
        if outcome.status == 200 {
            shared.cache.insert(&job.key, Arc::clone(&outcome.body));
        }
        {
            let mut inflight = shared
                .inflight
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            inflight.remove(&job.key);
        }
        job.cell.publish(outcome);
        shared.busy_workers.fetch_sub(1, Ordering::SeqCst);
    }
}

fn stats_json(shared: &Arc<Shared>) -> Json {
    let inflight_keys = shared
        .inflight
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .len();
    shared.metrics.to_json(&[
        ("queue_depth", shared.queue.len() as f64),
        (
            "busy_workers",
            shared.busy_workers.load(Ordering::SeqCst) as f64,
        ),
        (
            "connections",
            shared.connections.load(Ordering::SeqCst) as f64,
        ),
        ("inflight_keys", inflight_keys as f64),
        ("response_cache_entries", shared.cache.len() as f64),
        ("explorer_cache_entries", shared.explorers.len() as f64),
    ])
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Error",
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> bool {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n",
        status_reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes()).is_ok()
        && stream.write_all(body.as_bytes()).is_ok()
        && stream.flush().is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subslice_search() {
        assert_eq!(find_subslice(b"abcd\r\n\r\nrest", b"\r\n\r\n"), Some(4));
        assert_eq!(find_subslice(b"abcd", b"\r\n\r\n"), None);
        assert_eq!(find_subslice(b"", b"\r\n\r\n"), None);
    }

    #[test]
    fn status_reasons_cover_produced_codes() {
        for status in [200, 400, 404, 405, 422, 429, 500, 503, 504] {
            assert_ne!(status_reason(status), "Error", "{status}");
        }
        assert_eq!(status_reason(418), "Error");
    }

    #[test]
    fn inflight_cell_times_out_then_delivers() {
        let cell = InflightCell::new();
        assert!(cell.wait(Duration::from_millis(10)).is_none());
        cell.publish(Outcome {
            status: 200,
            body: Arc::from("{}"),
        });
        let outcome = cell.wait(Duration::from_millis(10)).expect("published");
        assert_eq!(outcome.status, 200);
        assert_eq!(&*outcome.body, "{}");
    }
}
