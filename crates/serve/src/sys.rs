//! Minimal `poll(2)` plumbing — the only platform call the event loop
//! needs, declared directly so the crate stays free of external
//! dependencies.
//!
//! The workspace builds without crates.io access, so there is no `libc`
//! or `mio` to lean on; instead this module carries the one `extern "C"`
//! declaration required for readiness notification. It is the sole reason
//! the crate root is `#![deny(unsafe_code)]` rather than `forbid`: the
//! two `#[allow(unsafe_code)]` scopes below (the foreign declaration and
//! the call site) are the crate's entire unsafe surface, and both are
//! trivially auditable — `poll` reads and writes only the `PollFd` slice
//! we hand it, with the length we pass.

use std::io;
use std::os::fd::RawFd;

/// There is readable data (or a pending accept / peer close) on the fd.
pub const POLLIN: i16 = 0x001;
/// The fd can be written without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// The fd was not open (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of the `poll(2)` fd set, ABI-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch (negative entries are ignored by the
    /// kernel, which is how callers can hold a slot without watching it).
    pub fd: RawFd,
    /// Requested events ([`POLLIN`] / [`POLLOUT`]).
    pub events: i16,
    /// Returned events, filled in by the kernel.
    pub revents: i16,
}

impl PollFd {
    /// A watch entry for `fd` with the given interest set.
    pub fn new(fd: RawFd, events: i16) -> Self {
        Self {
            fd,
            events,
            revents: 0,
        }
    }

    /// `true` if any of `mask`'s bits came back in `revents`.
    pub fn returned(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }

    /// `true` if the kernel reported an error/hangup condition.
    pub fn failed(&self) -> bool {
        self.returned(POLLERR | POLLNVAL)
    }
}

#[cfg(target_os = "linux")]
type Nfds = std::ffi::c_ulong;
#[cfg(not(target_os = "linux"))]
type Nfds = u32;

// ce:safety(declaration only — binding poll(2) introduces no runtime
// behavior; the signature matches the libc prototype, and soundness is
// each call site's obligation)
#[allow(unsafe_code)]
mod ffi {
    extern "C" {
        pub fn poll(
            fds: *mut super::PollFd,
            nfds: super::Nfds,
            timeout: std::ffi::c_int,
        ) -> std::ffi::c_int;
    }
}

/// Blocks until at least one fd in `fds` is ready, the timeout elapses
/// (`timeout_ms`; negative waits forever), or a signal interrupts — which
/// is retried internally, so callers never see `EINTR`. Returns the
/// number of entries with non-zero `revents` (0 on timeout).
///
/// # Errors
///
/// `InvalidInput` if the slice length does not fit the kernel's `nfds_t`,
/// plus any non-`EINTR` failure from the underlying call (`EINVAL` for an
/// oversized set, `ENOMEM`, …).
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    let nfds = Nfds::try_from(fds.len()).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "poll set exceeds the platform nfds_t range",
        )
    })?;
    loop {
        // ce:safety(`fds` is a valid, exclusively borrowed slice of
        // `repr(C)` pollfd-compatible structs, `nfds` is its checked true
        // length, and the kernel only writes `revents` within it)
        #[allow(unsafe_code)]
        let rc = unsafe { ffi::poll(fds.as_mut_ptr(), nfds, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn timeout_returns_zero_ready() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let mut fds = [PollFd::new(listener.as_raw_fd(), POLLIN)];
        let ready = poll(&mut fds, 10).expect("poll");
        assert_eq!(ready, 0);
        assert!(!fds[0].returned(POLLIN));
    }

    #[test]
    fn readable_socket_reports_pollin() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut tx = TcpStream::connect(addr).expect("connect");
        let (rx, _) = listener.accept().expect("accept");
        tx.write_all(b"x").expect("write");
        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN | POLLOUT)];
        let ready = poll(&mut fds, 1000).expect("poll");
        assert!(ready >= 1);
        assert!(fds[0].returned(POLLIN), "revents {:#x}", fds[0].revents);
        assert!(fds[0].returned(POLLOUT), "idle socket is writable");
        assert!(!fds[0].failed());
    }

    #[test]
    fn negative_fd_entries_are_ignored() {
        let mut fds = [PollFd::new(-1, POLLIN)];
        let ready = poll(&mut fds, 10).expect("poll");
        assert_eq!(ready, 0);
        assert_eq!(fds[0].revents, 0);
    }
}
