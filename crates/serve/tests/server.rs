//! Integration tests driving `ce-serve` over real TCP sockets: routing,
//! error statuses, keep-alive, backpressure shedding, and graceful
//! shutdown draining.

use ce_serve::{start, Json, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Decodes a `transfer-encoding: chunked` payload into the body bytes.
fn dechunk(payload: &str) -> String {
    let mut out = String::new();
    let mut rest = payload;
    loop {
        let (len_line, after) = rest
            .split_once("\r\n")
            .unwrap_or_else(|| panic!("chunk length line missing in {payload:?}"));
        let len = usize::from_str_radix(len_line.trim(), 16).expect("hex chunk length");
        if len == 0 {
            break;
        }
        out.push_str(&after[..len]);
        rest = &after[len + 2..]; // past the chunk's trailing \r\n
    }
    out
}

/// Sends one HTTP/1.1 request with `connection: close` and returns
/// `(status, lowercased headers, body)`. Chunked bodies are decoded.
fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("head/body split");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|c| c.parse().ok())
        .expect("status code");
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let body = if header(&headers, "transfer-encoding") == Some("chunked") {
        dechunk(body)
    } else {
        body.to_string()
    };
    (status, headers, body)
}

fn header<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

/// Polls a top-level `/stats` gauge until `pred` holds, or fails the test.
fn wait_for_gauge(addr: SocketAddr, gauge: &str, pred: impl Fn(f64) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut last = f64::NAN;
    while Instant::now() < deadline {
        let (status, _, body) = http(addr, "GET", "/stats", "");
        assert_eq!(status, 200, "/stats must stay available");
        let stats = Json::parse(&body).expect("stats JSON");
        if let Some(v) = stats.get(gauge).and_then(Json::as_f64) {
            last = v;
            if pred(v) {
                return;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("gauge `{gauge}` never satisfied predicate (last value {last})");
}

/// An `/explore` body slow enough (4096 battery + CAS evaluations, the
/// widest space the default limits admit) to keep a debug-build worker
/// busy for seconds while the test inspects server state. `variant`
/// perturbs the space so each body is a distinct canonical key.
fn slow_explore_body(variant: usize) -> String {
    format!(
        r#"{{"ba":"PACE","demand_mw":5,"strategy":"renewables_battery_cas",
            "space":{{"solar":[0,100,4],"wind":[0,100,8],"battery":[0,{},128]}}}}"#,
        50 + variant
    )
}

#[test]
fn routing_and_error_statuses() {
    let handle = start(ServerConfig::default()).expect("bind");
    let addr = handle.addr();

    let (status, _, body) = http(addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "{\"status\":\"ok\"}"));

    let (status, _, body) = http(addr, "GET", "/scenarios", "");
    assert_eq!(status, 200);
    assert!(body.contains("renewables_battery_cas"), "{body}");

    let (status, _, _) = http(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _, _) = http(addr, "POST", "/healthz", "{}");
    assert_eq!(status, 405);
    let (status, _, body) = http(addr, "POST", "/evaluate", "{not json");
    assert_eq!(status, 400, "{body}");
    let (status, _, body) = http(
        addr,
        "POST",
        "/evaluate",
        r#"{"site":"UT","strategy":"fusion_reactors","design":{}}"#,
    );
    assert_eq!(status, 422, "{body}");
    let (status, _, body) = http(
        addr,
        "POST",
        "/evaluate",
        r#"{"site":"ZZ","strategy":"renewables_only","design":{}}"#,
    );
    assert_eq!(status, 404, "{body}");

    handle.shutdown();
}

#[test]
fn manifest_blocks_are_served_and_content_addressable() {
    let handle = start(ServerConfig::default()).expect("bind");
    let addr = handle.addr();

    // A plain evaluate carries no manifest block.
    let plain = r#"{"site":"UT","strategy":"renewables_battery","design":{"solar_mw":100,"battery_mwh":50}}"#;
    let (status, _, body) = http(addr, "POST", "/evaluate", plain);
    assert_eq!(status, 200, "{body}");
    assert!(!body.contains("\"manifest\""), "{body}");

    // Opting in appends the provenance block...
    let flagged = r#"{"site":"UT","strategy":"renewables_battery","design":{"solar_mw":100,"battery_mwh":50},"manifest":true}"#;
    let (status, _, body) = http(addr, "POST", "/evaluate", flagged);
    assert_eq!(status, 200, "{body}");
    let response = Json::parse(&body).expect("response JSON");
    let block = response.get("manifest").expect("manifest block");
    let result_hash = block
        .get("result_hash")
        .and_then(Json::as_str)
        .expect("result hash");
    assert_eq!(result_hash.len(), 64, "SHA-256 hex");
    assert_eq!(block.get("kind").and_then(Json::as_str), Some("evaluate"));
    assert_eq!(block.get("ba").and_then(Json::as_str), Some("PACE"));

    // ...and registers it for content-addressed lookup.
    let (status, _, served) = http(addr, "GET", &format!("/manifest/{result_hash}"), "");
    assert_eq!(status, 200, "{served}");
    let manifest = Json::parse(&served).expect("manifest JSON");
    assert_eq!(
        manifest.get("result_hash").and_then(Json::as_str),
        Some(result_hash)
    );
    assert_eq!(&manifest, block, "lookup returns the embedded block");

    // An unknown hash is a 404, not an error.
    let (status, _, _) = http(addr, "GET", &format!("/manifest/{}", "0".repeat(64)), "");
    assert_eq!(status, 404);

    // The flagged and plain requests are distinct cache keys: replaying
    // each returns its own bytes, now from cache.
    let (_, headers, replay) = http(addr, "POST", "/evaluate", flagged);
    assert_eq!(header(&headers, "x-ce-cache"), Some("hit"));
    assert_eq!(
        replay, body,
        "cached manifest-bearing body is byte-identical"
    );

    handle.shutdown();
}

#[test]
fn streamed_explore_carries_the_manifest_in_its_final_chunks() {
    let config = ServerConfig {
        stream_threshold_points: 1, // force chunked framing even for tiny sweeps
        ..ServerConfig::default()
    };
    let handle = start(config).expect("bind");
    let addr = handle.addr();
    let body = r#"{"ba":"PACE","demand_mw":5,"strategy":"renewables_only",
                   "space":{"solar":[0,100,3],"wind":[0,100,2]},"manifest":true}"#;
    let (status, headers, streamed) = http(addr, "POST", "/explore", body);
    assert_eq!(status, 200, "{streamed}");
    assert_eq!(header(&headers, "transfer-encoding"), Some("chunked"));
    let response = Json::parse(&streamed).expect("dechunked body parses");
    assert_eq!(response.get("count").and_then(Json::as_f64), Some(6.0));
    let block = response.get("manifest").expect("manifest block");
    assert_eq!(block.get("kind").and_then(Json::as_str), Some("explore"));
    let result_hash = block
        .get("result_hash")
        .and_then(Json::as_str)
        .expect("result hash");
    let (status, _, served) = http(addr, "GET", &format!("/manifest/{result_hash}"), "");
    assert_eq!(status, 200, "{served}");
    assert_eq!(
        Json::parse(&served)
            .expect("manifest JSON")
            .get("input_hash"),
        block.get("input_hash")
    );
    handle.shutdown();
}

#[test]
fn keep_alive_serves_sequential_requests_on_one_connection() {
    let handle = start(ServerConfig::default()).expect("bind");
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let probe = b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n";
    stream.write_all(probe).expect("first request");
    stream.write_all(probe).expect("second request");
    let mut seen = String::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    while seen.matches("{\"status\":\"ok\"}").count() < 2 {
        assert!(Instant::now() < deadline, "responses: {seen}");
        let mut chunk = [0u8; 1024];
        let n = stream.read(&mut chunk).expect("read");
        assert_ne!(n, 0, "connection closed early: {seen}");
        seen.push_str(&String::from_utf8_lossy(&chunk[..n]));
    }
    assert_eq!(seen.matches("HTTP/1.1 200").count(), 2, "{seen}");
    handle.shutdown();
}

#[test]
fn oversized_bodies_are_rejected_with_413_before_buffering() {
    let config = ServerConfig {
        max_body_bytes: 128,
        ..ServerConfig::default()
    };
    let handle = start(config).expect("bind");
    let (status, headers, body) = http(handle.addr(), "POST", "/evaluate", &"x".repeat(256));
    assert_eq!(status, 413, "{body}");
    assert_eq!(header(&headers, "connection"), Some("close"));

    // The rejection happens at the request head: a declared-oversized body
    // is refused even when none of its bytes ever arrive.
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    stream
        .write_all(b"POST /evaluate HTTP/1.1\r\nhost: t\r\ncontent-length: 999999\r\n\r\n")
        .expect("head only");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("response then close");
    let text = String::from_utf8_lossy(&reply);
    assert!(text.starts_with("HTTP/1.1 413"), "{text}");
    handle.shutdown();
}

#[test]
fn stalled_mid_request_connections_get_408() {
    let config = ServerConfig {
        read_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let handle = start(config).expect("bind");

    // A slow-loris peer: opens a request head and then goes silent.
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    stream
        .write_all(b"POST /evaluate HTTP/1.1\r\nhost: t\r\ncontent-le")
        .expect("partial head");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("408 then close");
    let text = String::from_utf8_lossy(&reply);
    assert!(text.starts_with("HTTP/1.1 408"), "{text}");

    // A well-behaved request on a fresh connection still succeeds.
    let (status, _, body) = http(handle.addr(), "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "{\"status\":\"ok\"}"));
    handle.shutdown();
}

#[test]
fn idle_keep_alive_connections_are_closed_after_idle_timeout() {
    let config = ServerConfig {
        idle_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let handle = start(config).expect("bind");
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut reply = Vec::new();
    stream
        .read_to_end(&mut reply)
        .expect("EOF when idle-closed");
    assert!(reply.is_empty(), "idle close sends nothing: {reply:?}");
    handle.shutdown();
}

#[test]
fn requests_delivered_one_byte_at_a_time_still_parse() {
    let handle = start(ServerConfig::default()).expect("bind");
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let body = r#"{"site":"UT","strategy":"renewables_only","design":{"solar_mw":100}}"#;
    let request = format!(
        "POST /evaluate HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    for &byte in request.as_bytes() {
        stream.write_all(&[byte]).expect("drip one byte");
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("response");
    let text = String::from_utf8_lossy(&reply);
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    assert!(text.contains("\"strategy\":\"renewables_only\""), "{text}");
    handle.shutdown();
}

#[test]
fn pipelined_requests_split_across_reads_are_answered_in_order() {
    let handle = start(ServerConfig::default()).expect("bind");
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let body = r#"{"site":"UT","strategy":"renewables_only","design":{"solar_mw":100}}"#;
    let post = format!(
        "POST /evaluate HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    let wire = post.repeat(3) + "GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n";
    // Deliver the pipelined burst in awkward slices that split heads and
    // bodies across reads.
    let bytes = wire.as_bytes();
    let cuts = [7, 63, post.len() + 5, 2 * post.len() + 11, bytes.len()];
    let mut sent = 0;
    for cut in cuts {
        stream.write_all(&bytes[sent..cut]).expect("slice");
        sent = cut;
        std::thread::sleep(Duration::from_millis(20));
    }
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("responses");
    let text = String::from_utf8_lossy(&reply);
    assert_eq!(text.matches("HTTP/1.1 200").count(), 4, "{text}");
    assert!(
        text.trim_end().ends_with("{\"status\":\"ok\"}"),
        "responses out of order: {text}"
    );
    // The three identical evaluates resolve to one computation plus two
    // cache hits, all byte-identical.
    assert_eq!(text.matches("\"strategy\":\"renewables_only\"").count(), 3);
    handle.shutdown();
}

#[test]
fn full_queue_sheds_with_429_while_healthz_stays_responsive() {
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    };
    let handle = start(config).expect("bind");
    let addr = handle.addr();

    // Job A occupies the only worker...
    let job_a = std::thread::spawn(move || http(addr, "POST", "/explore", &slow_explore_body(0)));
    wait_for_gauge(addr, "busy_workers", |v| v >= 1.0);
    // ...job B fills the only queue slot...
    let job_b = std::thread::spawn(move || http(addr, "POST", "/explore", &slow_explore_body(1)));
    wait_for_gauge(addr, "queue_depth", |v| v >= 1.0);

    // ...so job C must be shed, with a Retry-After hint.
    let (status, headers, body) = http(addr, "POST", "/explore", &slow_explore_body(2));
    assert_eq!(status, 429, "{body}");
    assert_eq!(header(&headers, "retry-after"), Some("1"));

    // Saturated compute never blocks observability.
    let (status, _, body) = http(addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "{\"status\":\"ok\"}"));
    let (status, _, body) = http(addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    let stats = Json::parse(&body).expect("stats JSON");
    let shed = stats
        .get("endpoints")
        .and_then(|e| e.get("explore"))
        .and_then(|e| e.get("shed"))
        .and_then(Json::as_f64);
    assert_eq!(shed, Some(1.0), "{body}");

    // The accepted jobs still complete normally.
    let (status_a, headers_a, _) = job_a.join().expect("job A");
    let (status_b, _, _) = job_b.join().expect("job B");
    assert_eq!((status_a, status_b), (200, 200));
    assert_eq!(header(&headers_a, "x-ce-cache"), Some("miss"));

    // And the shed key was fully retired: retrying job C now succeeds.
    let (status, _, body) = http(addr, "POST", "/explore", &slow_explore_body(2));
    assert_eq!(status, 200, "{body}");

    // Replays of job A are cache hits.
    let (status, headers, _) = http(addr, "POST", "/explore", &slow_explore_body(0));
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-ce-cache"), Some("hit"));

    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_work_then_refuses_connections() {
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 4,
        ..ServerConfig::default()
    };
    let handle = start(config).expect("bind");
    let addr = handle.addr();

    let in_flight =
        std::thread::spawn(move || http(addr, "POST", "/explore", &slow_explore_body(9)));
    wait_for_gauge(addr, "busy_workers", |v| v >= 1.0);
    handle.shutdown();

    // The request accepted before shutdown was drained, not dropped.
    let (status, _, body) = in_flight.join().expect("drained request");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"results\""), "{body}");

    // The listener is gone: new connections fail (or are reset unserved).
    match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
        Err(_) => {}
        Ok(mut stream) => {
            let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n");
            let mut reply = Vec::new();
            let _ = stream
                .set_read_timeout(Some(Duration::from_secs(2)))
                .and_then(|()| stream.read_to_end(&mut reply));
            assert!(reply.is_empty(), "served after shutdown: {reply:?}");
        }
    }
}
