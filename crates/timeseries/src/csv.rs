//! Minimal CSV export/import for hourly series.
//!
//! The reproduction harness writes every figure's data as CSV so it can be
//! plotted with any external tool. Only the narrow grammar we emit is
//! parsed back: a header row, then `timestamp,value[,value...]` records
//! where the timestamp column is informational and ordering is positional.

use crate::series::HourlySeries;
use crate::time::Timestamp;
use crate::TimeSeriesError;
use std::io::{BufRead, BufReader, Read, Write};

/// Writes one or more aligned series as CSV columns.
///
/// The first column is the timestamp; each series contributes one column
/// named by `names`. All series must be aligned with the first.
///
/// # Errors
///
/// Returns an alignment error if the series are misaligned, or an I/O error
/// from the writer. `names` and `series` must be the same length or
/// [`TimeSeriesError::LengthMismatch`] is returned.
pub fn write_csv<W: Write>(
    mut w: W,
    names: &[&str],
    series: &[&HourlySeries],
) -> Result<(), TimeSeriesError> {
    if names.len() != series.len() {
        return Err(TimeSeriesError::LengthMismatch {
            left: names.len(),
            right: series.len(),
        });
    }
    if series.is_empty() {
        return Err(TimeSeriesError::Empty);
    }
    let first = series[0];
    for s in &series[1..] {
        first.check_aligned(s)?;
    }
    write!(w, "timestamp")?;
    for name in names {
        write!(w, ",{name}")?;
    }
    writeln!(w)?;
    for i in 0..first.len() {
        write!(w, "{}", first.timestamp(i))?;
        for s in series {
            write!(w, ",{}", s[i])?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Renders series to a CSV `String` (convenience wrapper over [`write_csv`]).
///
/// # Errors
///
/// Same as [`write_csv`].
pub fn to_csv_string(names: &[&str], series: &[&HourlySeries]) -> Result<String, TimeSeriesError> {
    let mut buf = Vec::new();
    write_csv(&mut buf, names, series)?;
    // The writers above only emit ASCII, so the lossy conversion is
    // exact; it simply avoids a panic path.
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

/// Reads CSV produced by [`write_csv`] back into series.
///
/// The timestamp column is ignored except that the series is anchored at
/// `start`; values are read positionally.
///
/// # Errors
///
/// Returns [`TimeSeriesError::Csv`] for malformed rows and
/// [`TimeSeriesError::Empty`] if the input has no header.
pub fn read_csv<R: Read>(r: R, start: Timestamp) -> Result<Vec<HourlySeries>, TimeSeriesError> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines();
    let header = lines.next().ok_or(TimeSeriesError::Empty)??;
    let columns = header.split(',').count();
    if columns < 2 {
        return Err(TimeSeriesError::Csv {
            line: 1,
            message: "expected a timestamp column plus at least one value column".into(),
        });
    }
    let mut data: Vec<Vec<f64>> = vec![Vec::new(); columns - 1];
    for (idx, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != columns {
            return Err(TimeSeriesError::Csv {
                line: idx + 2,
                message: format!("expected {columns} fields, found {}", fields.len()),
            });
        }
        for (col, field) in fields[1..].iter().enumerate() {
            let value: f64 = field.trim().parse().map_err(|_| TimeSeriesError::Csv {
                line: idx + 2,
                message: format!("cannot parse {field:?} as a number"),
            })?;
            data[col].push(value);
        }
    }
    Ok(data
        .into_iter()
        .map(|values| HourlySeries::from_values(start, values))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start() -> Timestamp {
        Timestamp::start_of_year(2020)
    }

    #[test]
    fn roundtrip_two_columns() {
        let a = HourlySeries::from_values(start(), vec![1.0, 2.0, 3.0]);
        let b = HourlySeries::from_values(start(), vec![0.5, 0.25, 0.125]);
        let csv = to_csv_string(&["wind", "solar"], &[&a, &b]).unwrap();
        assert!(csv.starts_with("timestamp,wind,solar\n"));
        let parsed = read_csv(csv.as_bytes(), start()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], a);
        assert_eq!(parsed[1], b);
    }

    #[test]
    fn write_rejects_mismatched_names() {
        let a = HourlySeries::zeros(start(), 2);
        assert!(to_csv_string(&["one", "two"], &[&a]).is_err());
        assert!(to_csv_string(&[], &[]).is_err());
    }

    #[test]
    fn write_rejects_misaligned_series() {
        let a = HourlySeries::zeros(start(), 2);
        let b = HourlySeries::zeros(start(), 3);
        assert!(to_csv_string(&["a", "b"], &[&a, &b]).is_err());
    }

    #[test]
    fn read_rejects_ragged_rows() {
        let bad = "timestamp,x\n2020-01-01 00:00,1.0,9.0\n";
        let err = read_csv(bad.as_bytes(), start()).unwrap_err();
        assert!(matches!(err, TimeSeriesError::Csv { line: 2, .. }));
    }

    #[test]
    fn read_rejects_bad_numbers() {
        let bad = "timestamp,x\n2020-01-01 00:00,notanumber\n";
        let err = read_csv(bad.as_bytes(), start()).unwrap_err();
        assert!(matches!(err, TimeSeriesError::Csv { line: 2, .. }));
    }

    #[test]
    fn read_skips_blank_lines() {
        let csv = "timestamp,x\n2020-01-01 00:00,1.5\n\n2020-01-01 01:00,2.5\n";
        let parsed = read_csv(csv.as_bytes(), start()).unwrap();
        assert_eq!(parsed[0].values(), &[1.5, 2.5]);
    }
}
