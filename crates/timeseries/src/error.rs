use std::fmt;

/// Errors produced by time-series operations.
///
/// The `Display` form is a lowercase, punctuation-free sentence per the Rust
/// API guidelines; every variant carries enough context to diagnose the
/// failing call without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TimeSeriesError {
    /// Two series that must share a length (and alignment) did not.
    LengthMismatch {
        /// Length of the left-hand series.
        left: usize,
        /// Length of the right-hand series.
        right: usize,
    },
    /// Two series that must start at the same timestamp did not.
    StartMismatch,
    /// A window or index fell outside the series bounds.
    OutOfBounds {
        /// The offending index (in hours from the series start).
        index: usize,
        /// The series length.
        len: usize,
    },
    /// An operation that requires a non-empty series received an empty one.
    Empty,
    /// A calendar component (month, day, hour) was invalid.
    InvalidDate {
        /// Human-readable description of what was invalid.
        what: &'static str,
    },
    /// CSV input could not be parsed.
    Csv {
        /// 1-based line number of the malformed record.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An underlying I/O error, carried as a string to keep the error `Clone`.
    Io(String),
}

impl fmt::Display for TimeSeriesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::LengthMismatch { left, right } => {
                write!(f, "series lengths differ: {left} vs {right}")
            }
            Self::StartMismatch => write!(f, "series start timestamps differ"),
            Self::OutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for series of length {len}")
            }
            Self::Empty => write!(f, "operation requires a non-empty series"),
            Self::InvalidDate { what } => write!(f, "invalid date component: {what}"),
            Self::Csv { line, message } => write!(f, "csv parse error at line {line}: {message}"),
            Self::Io(message) => write!(f, "io error: {message}"),
        }
    }
}

impl std::error::Error for TimeSeriesError {}

impl From<std::io::Error> for TimeSeriesError {
    fn from(err: std::io::Error) -> Self {
        Self::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let errors: Vec<TimeSeriesError> = vec![
            TimeSeriesError::LengthMismatch { left: 1, right: 2 },
            TimeSeriesError::StartMismatch,
            TimeSeriesError::OutOfBounds { index: 5, len: 3 },
            TimeSeriesError::Empty,
            TimeSeriesError::Csv {
                line: 2,
                message: "bad float".into(),
            },
            TimeSeriesError::Io("disk gone".into()),
        ];
        for err in errors {
            let text = err.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase());
            assert!(!text.ends_with('.'));
        }
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err = TimeSeriesError::from(io);
        assert!(matches!(err, TimeSeriesError::Io(_)));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TimeSeriesError>();
    }
}
