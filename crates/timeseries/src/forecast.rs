//! Simple time-series forecasting for renewable supply and demand.
//!
//! The paper's discussion section notes that "time-series analysis
//! accurately forecasts renewable supplies and datacenter demands for
//! energy. Forecasts permit optimizing schedules of flexible jobs in
//! response to energy supply." Carbon Explorer's offline analyses use
//! oracle (actual) data; this module supplies the forecasting baselines a
//! deployed scheduler would use instead:
//!
//! - [`persistence`]: tomorrow's hour `h` = today's hour `h` value at the
//!   forecast origin (a flat carry-forward),
//! - [`seasonal_naive`]: value at `t` = value at `t − 24 h` (carries the
//!   diurnal shape, the standard solar baseline),
//! - [`blended`]: a convex combination of the two.
//!
//! Error metrics ([`mae`], [`rmse`], [`mape`]) quantify forecast quality
//! so online-vs-oracle scheduling gaps can be attributed.

use crate::series::HourlySeries;
use crate::time::HOURS_PER_DAY;
use crate::TimeSeriesError;

/// Persistence forecast: every forecast hour repeats the last observed
/// value. `history` must be non-empty.
///
/// # Errors
///
/// Returns [`TimeSeriesError::Empty`] for empty history.
pub fn persistence(
    history: &HourlySeries,
    horizon: usize,
) -> Result<HourlySeries, TimeSeriesError> {
    let last = history
        .get(history.len().wrapping_sub(1))
        .ok_or(TimeSeriesError::Empty)?;
    Ok(HourlySeries::constant(
        history.start().plus_hours(history.len()),
        horizon,
        last,
    ))
}

/// Seasonal-naive forecast: hour `t` of the forecast equals the observed
/// value 24 hours before it (recursively for horizons beyond one day).
///
/// # Errors
///
/// Returns [`TimeSeriesError::Empty`] if `history` is shorter than one day.
pub fn seasonal_naive(
    history: &HourlySeries,
    horizon: usize,
) -> Result<HourlySeries, TimeSeriesError> {
    if history.len() < HOURS_PER_DAY {
        return Err(TimeSeriesError::Empty);
    }
    // The final 24 observed hours end exactly one day before the forecast
    // origin, so forecast hour `h` repeats `last_day[h % 24]` — the value
    // observed 24 (or 48, 72, ...) hours earlier at the same hour of day.
    let last_day = &history.values()[history.len() - HOURS_PER_DAY..];
    Ok(HourlySeries::from_fn(
        history.start().plus_hours(history.len()),
        horizon,
        |h| last_day[h % HOURS_PER_DAY],
    ))
}

/// Convex blend of persistence and seasonal-naive forecasts:
/// `alpha × seasonal + (1 − alpha) × persistence`.
///
/// # Errors
///
/// Propagates either base forecast's error.
///
/// # Panics
///
/// Panics if `alpha` is outside `[0, 1]`.
pub fn blended(
    history: &HourlySeries,
    horizon: usize,
    alpha: f64,
) -> Result<HourlySeries, TimeSeriesError> {
    assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
    let seasonal = seasonal_naive(history, horizon)?;
    let flat = persistence(history, horizon)?;
    seasonal.zip_with(&flat, |s, p| alpha * s + (1.0 - alpha) * p)
}

/// Mean absolute error between forecast and actual.
///
/// # Errors
///
/// Returns an alignment error for misaligned series, or
/// [`TimeSeriesError::Empty`] for empty input.
pub fn mae(forecast: &HourlySeries, actual: &HourlySeries) -> Result<f64, TimeSeriesError> {
    forecast.check_aligned(actual)?;
    if forecast.is_empty() {
        return Err(TimeSeriesError::Empty);
    }
    Ok(forecast.zip_with(actual, |f, a| (f - a).abs())?.mean())
}

/// Root-mean-square error between forecast and actual.
///
/// # Errors
///
/// Same conditions as [`mae`].
pub fn rmse(forecast: &HourlySeries, actual: &HourlySeries) -> Result<f64, TimeSeriesError> {
    forecast.check_aligned(actual)?;
    if forecast.is_empty() {
        return Err(TimeSeriesError::Empty);
    }
    Ok(forecast
        .zip_with(actual, |f, a| (f - a).powi(2))?
        .mean()
        .sqrt())
}

/// Mean absolute percentage error, skipping hours where the actual is
/// (near) zero — solar nights would otherwise blow the metric up.
///
/// # Errors
///
/// Same conditions as [`mae`].
pub fn mape(forecast: &HourlySeries, actual: &HourlySeries) -> Result<f64, TimeSeriesError> {
    forecast.check_aligned(actual)?;
    if forecast.is_empty() {
        return Err(TimeSeriesError::Empty);
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for h in 0..forecast.len() {
        let a = actual[h];
        if a.abs() > 1e-9 {
            total += ((forecast[h] - a) / a).abs();
            count += 1;
        }
    }
    Ok(if count > 0 { total / count as f64 } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn start() -> Timestamp {
        Timestamp::start_of_year(2020)
    }

    fn diurnal(days: usize) -> HourlySeries {
        HourlySeries::from_fn(start(), days * 24, |h| {
            10.0 + 5.0 * ((h % 24) as f64 / 24.0 * std::f64::consts::TAU).sin()
        })
    }

    #[test]
    fn persistence_repeats_last_value() {
        let history = HourlySeries::from_values(start(), vec![1.0, 2.0, 7.0]);
        let forecast = persistence(&history, 4).unwrap();
        assert_eq!(forecast.values(), &[7.0, 7.0, 7.0, 7.0]);
        assert_eq!(forecast.start(), start().plus_hours(3));
        assert!(persistence(&HourlySeries::zeros(start(), 0), 2).is_err());
    }

    #[test]
    fn seasonal_naive_repeats_yesterday() {
        let history = diurnal(3);
        let forecast = seasonal_naive(&history, 24).unwrap();
        // A perfectly periodic signal is forecast exactly.
        let actual = HourlySeries::from_fn(start().plus_hours(72), 24, |h| {
            10.0 + 5.0 * (((h + 72) % 24) as f64 / 24.0 * std::f64::consts::TAU).sin()
        });
        assert!(mae(&forecast, &actual).unwrap() < 1e-12);
        assert!(seasonal_naive(&HourlySeries::zeros(start(), 10), 4).is_err());
    }

    #[test]
    fn seasonal_naive_handles_partial_day_history() {
        // 30 hours of history: the forecast phase must stay aligned.
        let history = HourlySeries::from_fn(start(), 30, |h| (h % 24) as f64);
        let forecast = seasonal_naive(&history, 24).unwrap();
        // Forecast hour 0 corresponds to hour-of-day 6.
        assert_eq!(forecast[0], 6.0);
        assert_eq!(forecast[17], 23.0);
        assert_eq!(forecast[18], 0.0);
    }

    #[test]
    fn seasonal_beats_persistence_on_diurnal_signals() {
        let full = diurnal(4);
        let history = full.window(0, 72).unwrap();
        let actual = full.window(72, 24).unwrap();
        let seasonal = seasonal_naive(&history, 24).unwrap();
        let flat = persistence(&history, 24).unwrap();
        assert!(mae(&seasonal, &actual).unwrap() < mae(&flat, &actual).unwrap());
    }

    #[test]
    fn blend_interpolates() {
        let history = diurnal(2);
        let s = seasonal_naive(&history, 12).unwrap();
        let p = persistence(&history, 12).unwrap();
        let b = blended(&history, 12, 0.5).unwrap();
        for h in 0..12 {
            assert!((b[h] - 0.5 * (s[h] + p[h])).abs() < 1e-12);
        }
        assert_eq!(blended(&history, 12, 1.0).unwrap(), s);
        assert_eq!(blended(&history, 12, 0.0).unwrap(), p);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn blend_rejects_bad_alpha() {
        let _ = blended(&diurnal(2), 4, 1.5);
    }

    #[test]
    fn error_metrics() {
        let f = HourlySeries::from_values(start(), vec![1.0, 2.0, 3.0]);
        let a = HourlySeries::from_values(start(), vec![2.0, 2.0, 1.0]);
        assert!((mae(&f, &a).unwrap() - 1.0).abs() < 1e-12);
        assert!((rmse(&f, &a).unwrap() - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        // MAPE skips zero actuals.
        let a0 = HourlySeries::from_values(start(), vec![0.0, 4.0, 2.0]);
        assert!((mape(&f, &a0).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn metrics_reject_bad_input() {
        let f = HourlySeries::zeros(start(), 2);
        let a = HourlySeries::zeros(start(), 3);
        assert!(mae(&f, &a).is_err());
        let empty = HourlySeries::zeros(start(), 0);
        assert!(rmse(&empty, &empty).is_err());
    }
}
