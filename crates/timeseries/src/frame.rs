//! A minimal named-column frame over a shared hourly index.
//!
//! The reference Carbon Explorer keeps its hourly data in pandas
//! DataFrames; this is the narrow equivalent the Rust port needs: a set
//! of equal-length, equally-anchored [`HourlySeries`] columns addressed
//! by name, with column math, row filtering, and CSV export. Columns are
//! kept aligned by construction — inserting a misaligned series is an
//! error, so downstream zips cannot fail.

use crate::csv::write_csv;
use crate::series::HourlySeries;
use crate::time::Timestamp;
use crate::TimeSeriesError;
use std::io::Write;

/// An ordered collection of named, aligned hourly columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    start: Timestamp,
    len: usize,
    columns: Vec<(String, HourlySeries)>,
}

impl Frame {
    /// Creates an empty frame with the given index.
    pub fn new(start: Timestamp, len: usize) -> Self {
        Self {
            start,
            len,
            columns: Vec::new(),
        }
    }

    /// The index start.
    pub fn start(&self) -> Timestamp {
        self.start
    }

    /// Rows in the frame.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the index has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Column names in insertion order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|(name, _)| name.as_str())
    }

    /// Inserts (or replaces) a column.
    ///
    /// # Errors
    ///
    /// Returns an alignment error if `series` does not match the frame's
    /// index.
    pub fn insert(
        &mut self,
        name: impl Into<String>,
        series: HourlySeries,
    ) -> Result<(), TimeSeriesError> {
        if series.len() != self.len {
            return Err(TimeSeriesError::LengthMismatch {
                left: self.len,
                right: series.len(),
            });
        }
        if series.start() != self.start {
            return Err(TimeSeriesError::StartMismatch);
        }
        let name = name.into();
        if let Some(slot) = self.columns.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = series;
        } else {
            self.columns.push((name, series));
        }
        Ok(())
    }

    /// Borrows a column by name.
    pub fn column(&self, name: &str) -> Option<&HourlySeries> {
        self.columns.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Removes a column, returning it if present.
    pub fn remove(&mut self, name: &str) -> Option<HourlySeries> {
        let idx = self.columns.iter().position(|(n, _)| n == name)?;
        Some(self.columns.remove(idx).1)
    }

    /// Adds a derived column computed row-wise from existing columns.
    ///
    /// The closure receives a lookup from column name to that row's value.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::Csv`]-free errors only via alignment —
    /// this method itself cannot fail once inputs are aligned, so it only
    /// errors if `inputs` names a missing column.
    pub fn derive(
        &mut self,
        name: impl Into<String>,
        inputs: &[&str],
        mut f: impl FnMut(&[f64]) -> f64,
    ) -> Result<(), TimeSeriesError> {
        let mut sources = Vec::with_capacity(inputs.len());
        for input in inputs {
            let series = self.column(input).ok_or(TimeSeriesError::InvalidDate {
                what: "unknown input column",
            })?;
            sources.push(series.clone());
        }
        let derived = HourlySeries::from_fn(self.start, self.len, |h| {
            let row: Vec<f64> = sources.iter().map(|s| s[h]).collect();
            f(&row)
        });
        self.insert(name, derived)
    }

    /// Count of rows where `pred` holds over the named columns.
    ///
    /// # Errors
    ///
    /// Errors if a named column is missing.
    pub fn count_rows_where(
        &self,
        inputs: &[&str],
        mut pred: impl FnMut(&[f64]) -> bool,
    ) -> Result<usize, TimeSeriesError> {
        let mut sources = Vec::with_capacity(inputs.len());
        for input in inputs {
            sources.push(self.column(input).ok_or(TimeSeriesError::InvalidDate {
                what: "unknown input column",
            })?);
        }
        let mut count = 0;
        for h in 0..self.len {
            let row: Vec<f64> = sources.iter().map(|s| s[h]).collect();
            if pred(&row) {
                count += 1;
            }
        }
        Ok(count)
    }

    /// Writes all columns as CSV.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from the writer, or [`TimeSeriesError::Empty`]
    /// for a column-less frame.
    pub fn to_csv<W: Write>(&self, w: W) -> Result<(), TimeSeriesError> {
        let names: Vec<&str> = self.names().collect();
        let series: Vec<&HourlySeries> = self.columns.iter().map(|(_, s)| s).collect();
        write_csv(w, &names, &series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start() -> Timestamp {
        Timestamp::start_of_year(2020)
    }

    fn frame() -> Frame {
        let mut f = Frame::new(start(), 4);
        f.insert(
            "demand",
            HourlySeries::from_values(start(), vec![10.0, 10.0, 10.0, 10.0]),
        )
        .unwrap();
        f.insert(
            "supply",
            HourlySeries::from_values(start(), vec![12.0, 8.0, 15.0, 0.0]),
        )
        .unwrap();
        f
    }

    #[test]
    fn insert_and_lookup() {
        let f = frame();
        assert_eq!(f.width(), 2);
        assert_eq!(f.len(), 4);
        assert!(!f.is_empty());
        assert_eq!(f.column("supply").unwrap()[2], 15.0);
        assert!(f.column("nope").is_none());
        assert_eq!(f.names().collect::<Vec<_>>(), vec!["demand", "supply"]);
    }

    #[test]
    fn insert_replaces_same_name() {
        let mut f = frame();
        f.insert("supply", HourlySeries::zeros(start(), 4)).unwrap();
        assert_eq!(f.width(), 2);
        assert_eq!(f.column("supply").unwrap().sum(), 0.0);
    }

    #[test]
    fn misaligned_insert_is_rejected() {
        let mut f = frame();
        assert!(f.insert("short", HourlySeries::zeros(start(), 3)).is_err());
        assert!(f
            .insert("offset", HourlySeries::zeros(start().plus_hours(1), 4))
            .is_err());
    }

    #[test]
    fn derive_computes_row_wise() {
        let mut f = frame();
        f.derive("deficit", &["demand", "supply"], |row| {
            (row[0] - row[1]).max(0.0)
        })
        .unwrap();
        assert_eq!(
            f.column("deficit").unwrap().values(),
            &[0.0, 2.0, 0.0, 10.0]
        );
        assert!(f.derive("bad", &["missing"], |_| 0.0).is_err());
    }

    #[test]
    fn count_rows_where_filters() {
        let f = frame();
        let covered = f
            .count_rows_where(&["demand", "supply"], |row| row[1] >= row[0])
            .unwrap();
        assert_eq!(covered, 2);
    }

    #[test]
    fn remove_returns_column() {
        let mut f = frame();
        let removed = f.remove("demand").unwrap();
        assert_eq!(removed.sum(), 40.0);
        assert_eq!(f.width(), 1);
        assert!(f.remove("demand").is_none());
    }

    #[test]
    fn csv_roundtrip_shape() {
        let f = frame();
        let mut buf = Vec::new();
        f.to_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("timestamp,demand,supply\n"));
        assert_eq!(text.lines().count(), 5);
        // Empty frame is an error (no columns to write).
        let empty = Frame::new(start(), 4);
        assert!(empty.to_csv(&mut Vec::new()).is_err());
    }
}
