//! Fused reduction kernels over hourly series.
//!
//! The design-space sweep evaluates the same handful of reductions tens of
//! thousands of times per balancing authority: "sum of the clamped
//! deficit", "deficit-weighted carbon intensity", "how many hours were
//! fully covered". Written naively (`zip_with(...).sum()`), each of those
//! materializes a fresh 8760-sample [`HourlySeries`] only to fold it away.
//! The kernels here fuse the combine-and-reduce into a single pass with no
//! intermediate allocation; they are the inner loops of
//! `ce_core::CarbonExplorer::evaluate`.
//!
//! Every kernel applies its operations elementwise in index order with a
//! sequential left-to-right fold — exactly the float-operation sequence of
//! the naive formulation — so results are bitwise-identical to
//! `zip_with(f).sum()`, which the unit tests assert.
//!
//! Slice-level variants (`*_slices`) are exposed for callers that operate
//! on windows of a series (e.g. monthly decomposition) without paying
//! [`HourlySeries::window`]'s copy.

use crate::series::HourlySeries;
use crate::TimeSeriesError;

/// Covered-hour threshold shared with coverage accounting: an hour whose
/// clamped deficit is at most this many MWh counts as fully covered.
pub const COVERED_EPSILON_MWH: f64 = 1e-9;

/// Sums `f(a[i], b[i])` over two equal-length slices without allocating.
///
/// # Panics
///
/// Panics (debug assertion) if the slices differ in length.
#[must_use]
// ce:hot
pub fn zip_sum_slices(a: &[f64], b: &[f64], mut f: impl FnMut(f64, f64) -> f64) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "zip_sum_slices requires equal lengths");
    a.iter().zip(b).map(|(&x, &y)| f(x, y)).sum()
}

/// Dot product `Σ a[i]·b[i]` of two equal-length slices.
#[must_use]
// ce:hot
pub fn dot_slices(a: &[f64], b: &[f64]) -> f64 {
    zip_sum_slices(a, b, |x, y| x * y)
}

/// Clamped-deficit energy `Σ max(d[i] − s[i], 0)` — the unmet MWh of
/// demand `d` under supply `s`.
#[must_use]
// ce:hot
pub fn deficit_sum_slices(demand: &[f64], supply: &[f64]) -> f64 {
    zip_sum_slices(demand, supply, |d, s| (d - s).max(0.0))
}

/// Deficit-weighted reduction `Σ max(d[i] − s[i], 0) · w[i]`, e.g. unmet
/// energy times hourly carbon intensity = operational tons.
#[must_use]
// ce:hot
pub fn deficit_dot_slices(demand: &[f64], supply: &[f64], weight: &[f64]) -> f64 {
    debug_assert_eq!(demand.len(), weight.len(), "deficit_dot_slices lengths");
    demand
        .iter()
        .zip(supply)
        .zip(weight)
        .map(|((&d, &s), &w)| (d - s).max(0.0) * w)
        .sum()
}

/// The coverage-relevant aggregates of a clamped deficit, in one pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeficitStats {
    /// Total unmet energy `Σ max(d − s, 0)`, MWh.
    pub unmet_mwh: f64,
    /// Hours whose clamped deficit is ≤ [`COVERED_EPSILON_MWH`].
    pub covered_hours: usize,
}

/// Computes unmet energy and fully-covered hour count of `demand` under
/// `supply` in a single pass, matching the float sequence of
/// materializing the deficit series and then summing/counting it.
#[must_use]
// ce:hot
pub fn deficit_stats_slices(demand: &[f64], supply: &[f64]) -> DeficitStats {
    debug_assert_eq!(demand.len(), supply.len(), "deficit_stats_slices lengths");
    let mut unmet_mwh = 0.0;
    let mut covered_hours = 0usize;
    for (&d, &s) in demand.iter().zip(supply) {
        let u = (d - s).max(0.0);
        unmet_mwh += u;
        if u <= COVERED_EPSILON_MWH {
            covered_hours += 1;
        }
    }
    DeficitStats {
        unmet_mwh,
        covered_hours,
    }
}

/// Computes [`deficit_stats_slices`] and [`deficit_dot_slices`] in a
/// single pass: unmet energy, covered-hour count, and the
/// deficit-weighted reduction `Σ max(d[i] − s[i], 0) · w[i]`.
///
/// Each accumulator folds in index order, exactly as the two separate
/// kernels would, so both components are bitwise-identical to running
/// [`deficit_stats_slices`] and [`deficit_dot_slices`] back to back —
/// while reading the inputs once instead of twice. This is the scoring
/// reduction of the renewables-only and CAS sweep arms.
#[must_use]
// ce:hot
pub fn deficit_stats_dot_slices(
    demand: &[f64],
    supply: &[f64],
    weight: &[f64],
) -> (DeficitStats, f64) {
    debug_assert_eq!(demand.len(), supply.len(), "deficit_stats_dot lengths");
    debug_assert_eq!(demand.len(), weight.len(), "deficit_stats_dot lengths");
    let mut unmet_mwh = 0.0;
    let mut covered_hours = 0usize;
    let mut dot = 0.0;
    for ((&d, &s), &w) in demand.iter().zip(supply).zip(weight) {
        let u = (d - s).max(0.0);
        unmet_mwh += u;
        if u <= COVERED_EPSILON_MWH {
            covered_hours += 1;
        }
        dot += u * w;
    }
    (
        DeficitStats {
            unmet_mwh,
            covered_hours,
        },
        dot,
    )
}

/// Aggregates of an already-clamped unmet series (e.g. a dispatch model's
/// per-hour grid draw): total energy and fully-covered hour count, in one
/// pass. Matches summing the series and counting
/// `u ≤ COVERED_EPSILON_MWH` separately.
#[must_use]
// ce:hot
pub fn unmet_stats_slices(unmet: &[f64]) -> DeficitStats {
    let mut unmet_mwh = 0.0;
    let mut covered_hours = 0usize;
    for &u in unmet {
        unmet_mwh += u;
        if u <= COVERED_EPSILON_MWH {
            covered_hours += 1;
        }
    }
    DeficitStats {
        unmet_mwh,
        covered_hours,
    }
}

/// Writes `a[i]·fa + b[i]·fb` into `out` — the fused "scale two generation
/// series and add them" step of renewable-supply construction.
///
/// # Panics
///
/// Panics (debug assertion) on length mismatches.
// ce:hot
pub fn scaled_sum_into(a: &[f64], fa: f64, b: &[f64], fb: f64, out: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len(), "scaled_sum_into input lengths");
    debug_assert_eq!(a.len(), out.len(), "scaled_sum_into output length");
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x * fa + y * fb;
    }
}

impl HourlySeries {
    /// Fused `zip_with(other, f).sum()` without the intermediate series.
    ///
    /// # Errors
    ///
    /// Returns an alignment error if the series differ in start or length.
    // ce:hot
    pub fn zip_sum(
        &self,
        other: &Self,
        f: impl FnMut(f64, f64) -> f64,
    ) -> Result<f64, TimeSeriesError> {
        self.check_aligned(other)?;
        Ok(zip_sum_slices(self.values(), other.values(), f))
    }

    /// Dot product `Σ self[i]·other[i]`.
    ///
    /// # Errors
    ///
    /// Returns an alignment error if the series differ in start or length.
    // ce:hot
    pub fn dot(&self, other: &Self) -> Result<f64, TimeSeriesError> {
        self.check_aligned(other)?;
        Ok(dot_slices(self.values(), other.values()))
    }

    /// Unmet energy of `self` (demand) under `supply`:
    /// `Σ max(self − supply, 0)`.
    ///
    /// # Errors
    ///
    /// Returns an alignment error if the series differ in start or length.
    // ce:hot
    pub fn deficit_sum(&self, supply: &Self) -> Result<f64, TimeSeriesError> {
        self.check_aligned(supply)?;
        Ok(deficit_sum_slices(self.values(), supply.values()))
    }

    /// Deficit-weighted reduction
    /// `Σ max(self − supply, 0) · weight` — with `weight` an hourly carbon
    /// intensity this is operational carbon in one pass.
    ///
    /// # Errors
    ///
    /// Returns an alignment error if any pair of series is misaligned.
    // ce:hot
    pub fn deficit_dot(&self, supply: &Self, weight: &Self) -> Result<f64, TimeSeriesError> {
        self.check_aligned(supply)?;
        self.check_aligned(weight)?;
        Ok(deficit_dot_slices(
            self.values(),
            supply.values(),
            weight.values(),
        ))
    }

    /// Unmet energy and covered-hour count of `self` (demand) under
    /// `supply`, in one pass.
    ///
    /// # Errors
    ///
    /// Returns an alignment error if the series differ in start or length.
    // ce:hot
    pub fn deficit_stats(&self, supply: &Self) -> Result<DeficitStats, TimeSeriesError> {
        self.check_aligned(supply)?;
        Ok(deficit_stats_slices(self.values(), supply.values()))
    }

    /// [`HourlySeries::deficit_stats`] and [`HourlySeries::deficit_dot`]
    /// fused into one pass over the inputs; both components are
    /// bitwise-identical to the separate calls.
    ///
    /// # Errors
    ///
    /// Returns an alignment error if any pair of series is misaligned.
    // ce:hot
    pub fn deficit_stats_dot(
        &self,
        supply: &Self,
        weight: &Self,
    ) -> Result<(DeficitStats, f64), TimeSeriesError> {
        self.check_aligned(supply)?;
        self.check_aligned(weight)?;
        Ok(deficit_stats_dot_slices(
            self.values(),
            supply.values(),
            weight.values(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Timestamp;

    fn start() -> Timestamp {
        Timestamp::start_of_year(2020)
    }

    /// A pair of irregular aligned series exercising negative deficits,
    /// exact zeros, and magnitudes spanning several orders.
    fn fixtures() -> (HourlySeries, HourlySeries, HourlySeries) {
        let n = 1000;
        let demand = HourlySeries::from_fn(start(), n, |h| {
            10.0 + (h as f64 * 0.7).sin() * 9.0 + (h % 13) as f64 * 0.01
        });
        let supply = HourlySeries::from_fn(start(), n, |h| {
            (h as f64 * 0.31).cos().abs() * 25.0 * ((h % 7) as f64 / 6.0)
        });
        let weight = HourlySeries::from_fn(start(), n, |h| 0.1 + (h % 24) as f64 * 0.03);
        (demand, supply, weight)
    }

    #[test]
    fn zip_sum_is_bitwise_identical_to_naive() {
        let (a, b, _) = fixtures();
        let naive = a.zip_with(&b, |x, y| (x - y).max(0.0)).unwrap().sum();
        let fused = a.zip_sum(&b, |x, y| (x - y).max(0.0)).unwrap();
        assert_eq!(naive.to_bits(), fused.to_bits());
    }

    #[test]
    fn dot_is_bitwise_identical_to_naive() {
        let (a, b, _) = fixtures();
        let naive = a.zip_with(&b, |x, y| x * y).unwrap().sum();
        assert_eq!(naive.to_bits(), a.dot(&b).unwrap().to_bits());
    }

    #[test]
    fn deficit_sum_is_bitwise_identical_to_naive() {
        let (d, s, _) = fixtures();
        let naive = d.zip_with(&s, |x, y| (x - y).max(0.0)).unwrap().sum();
        assert_eq!(naive.to_bits(), d.deficit_sum(&s).unwrap().to_bits());
    }

    #[test]
    fn deficit_dot_is_bitwise_identical_to_naive() {
        let (d, s, w) = fixtures();
        let unmet = d.zip_with(&s, |x, y| (x - y).max(0.0)).unwrap();
        let naive = unmet.zip_with(&w, |u, i| u * i).unwrap().sum();
        let fused = d.deficit_dot(&s, &w).unwrap();
        assert_eq!(naive.to_bits(), fused.to_bits());
    }

    #[test]
    fn deficit_stats_match_materialized_series() {
        let (d, s, _) = fixtures();
        let unmet = d.zip_with(&s, |x, y| (x - y).max(0.0)).unwrap();
        let stats = d.deficit_stats(&s).unwrap();
        assert_eq!(stats.unmet_mwh.to_bits(), unmet.sum().to_bits());
        assert_eq!(
            stats.covered_hours,
            unmet.count_where(|u| u <= COVERED_EPSILON_MWH)
        );
        // Sanity: the fixture has both covered and uncovered hours.
        assert!(stats.covered_hours > 0 && stats.covered_hours < d.len());
    }

    #[test]
    fn deficit_stats_dot_matches_separate_kernels_bitwise() {
        let (d, s, w) = fixtures();
        let (stats, dot) = d.deficit_stats_dot(&s, &w).unwrap();
        let separate_stats = d.deficit_stats(&s).unwrap();
        let separate_dot = d.deficit_dot(&s, &w).unwrap();
        assert_eq!(
            stats.unmet_mwh.to_bits(),
            separate_stats.unmet_mwh.to_bits()
        );
        assert_eq!(stats.covered_hours, separate_stats.covered_hours);
        assert_eq!(dot.to_bits(), separate_dot.to_bits());
    }

    #[test]
    fn scaled_sum_matches_scale_then_add() {
        let (a, b, _) = fixtures();
        let (fa, fb) = (0.137, 2.91);
        let naive = (&(&a * fa) + &(&b * fb)).into_values();
        let mut out = vec![0.0; a.len()];
        scaled_sum_into(a.values(), fa, b.values(), fb, &mut out);
        assert_eq!(naive, out);
    }

    #[test]
    fn zero_factors_produce_exact_zeros() {
        let (a, b, _) = fixtures();
        let mut out = vec![f64::NAN; a.len()];
        scaled_sum_into(a.values(), 0.0, b.values(), 0.0, &mut out);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn misaligned_series_error() {
        let a = HourlySeries::zeros(start(), 5);
        let b = HourlySeries::zeros(start(), 6);
        assert!(a.dot(&b).is_err());
        assert!(a.deficit_sum(&b).is_err());
        assert!(a.deficit_stats(&b).is_err());
        assert!(a.zip_sum(&b, |x, y| x + y).is_err());
        let c = HourlySeries::zeros(start().plus_hours(1), 5);
        assert!(a.deficit_dot(&b, &c).is_err());
        assert!(a.deficit_dot(&c, &c).is_err());
        assert!(a.deficit_stats_dot(&b, &c).is_err());
        assert!(a.deficit_stats_dot(&c, &c).is_err());
    }

    #[test]
    fn unmet_stats_matches_deficit_stats_on_clamped_series() {
        let demand = [5.0f64, 2.0, 4.0, 1.0];
        let supply = [3.0f64, 2.5, 4.0, 0.0];
        let unmet: Vec<f64> = demand
            .iter()
            .zip(&supply)
            .map(|(&d, &s)| (d - s).max(0.0))
            .collect();
        let direct = unmet_stats_slices(&unmet);
        let reference = deficit_stats_slices(&demand, &supply);
        assert_eq!(direct.unmet_mwh, reference.unmet_mwh);
        assert_eq!(direct.covered_hours, reference.covered_hours);
    }

    #[test]
    fn empty_slices_sum_to_zero() {
        assert_eq!(dot_slices(&[], &[]), 0.0);
        assert_eq!(deficit_sum_slices(&[], &[]), 0.0);
        let stats = deficit_stats_slices(&[], &[]);
        assert_eq!(stats.unmet_mwh, 0.0);
        assert_eq!(stats.covered_hours, 0);
    }
}
