//! Fused reduction kernels over hourly series.
//!
//! The design-space sweep evaluates the same handful of reductions tens of
//! thousands of times per balancing authority: "sum of the clamped
//! deficit", "deficit-weighted carbon intensity", "how many hours were
//! fully covered". Written naively (`zip_with(...).sum()`), each of those
//! materializes a fresh 8760-sample [`HourlySeries`] only to fold it away.
//! The kernels here fuse the combine-and-reduce into a single pass with no
//! intermediate allocation; they are the inner loops of
//! `ce_core::CarbonExplorer::evaluate`.
//!
//! # Reduction order
//!
//! A single sequential accumulator chains every add through one register,
//! so the loop runs at the latency of an f64 add instead of the
//! throughput of the vector units. The reduction kernels therefore fold
//! into [`LANES`] **independent accumulator lanes** with a fixed,
//! documented combination order, which the compiler autovectorizes under
//! `#![forbid(unsafe_code)]`:
//!
//! 1. The input is split into full chunks of [`LANES`] elements followed
//!    by a remainder of `len % LANES` elements.
//! 2. Within the full chunks, element `i` folds into lane `i % LANES`:
//!    lane `j` accumulates elements `j, j + LANES, j + 2·LANES, …` in
//!    increasing index order. Elementwise *maps* (the clamp in a deficit,
//!    the multiply in a dot product, any caller-supplied closure) are
//!    still applied in increasing index order — only the *additions* are
//!    distributed across lanes.
//! 3. The lanes combine in the fixed tree
//!    `((l0 + l1) + (l2 + l3)) + ((l4 + l5) + (l6 + l7))`.
//! 4. The remainder elements fold sequentially, left to right, onto the
//!    tree total.
//!
//! This order is part of each kernel's contract: it is deterministic,
//! independent of thread count and platform, and shared by the
//! transparent scalar implementations in [`reference`], to which every
//! chunked kernel is bitwise-identical (the unit tests pin lengths 0, 1,
//! 7, 8, 9, and 8760). Purely elementwise kernels ([`scaled_sum_into`])
//! have no reduction and are bitwise-independent of chunking.
//!
//! Hour-by-hour *simulations* (battery dispatch, the combined heuristic)
//! carry loop-borne state and keep their sequential folds; their
//! contracts are unchanged.
//!
//! Slice-level variants (`*_slices`) are exposed for callers that operate
//! on windows of a series (e.g. monthly decomposition) without paying
//! [`HourlySeries::window`]'s copy.

use crate::series::HourlySeries;
use crate::TimeSeriesError;

/// Covered-hour threshold shared with coverage accounting: an hour whose
/// clamped deficit is at most this many MWh counts as fully covered.
pub const COVERED_EPSILON_MWH: f64 = 1e-9;

/// Number of independent accumulator lanes in the chunked reduction
/// kernels (see the [module docs](self) for the full reduction order).
///
/// Eight f64 lanes fill two 256-bit vectors (or four 128-bit ones), and —
/// even where the compiler emits scalar code — break the loop-carried
/// dependency on a single accumulator register.
pub const LANES: usize = 8;

/// Combines the accumulator lanes in the documented fixed tree:
/// `((l0 + l1) + (l2 + l3)) + ((l4 + l5) + (l6 + l7))`.
#[inline]
#[must_use]
fn reduce_lanes(lanes: [f64; LANES]) -> f64 {
    let [l0, l1, l2, l3, l4, l5, l6, l7] = lanes;
    ((l0 + l1) + (l2 + l3)) + ((l4 + l5) + (l6 + l7))
}

/// Sums `f(a[i], b[i])` over two equal-length slices without allocating,
/// in the documented chunked reduction order. `f` is applied to elements
/// in increasing index order (stateful closures observe every pair exactly
/// once, in order); only the additions are distributed across lanes.
#[must_use]
// ce:hot
pub fn zip_sum_slices(a: &[f64], b: &[f64], mut f: impl FnMut(f64, f64) -> f64) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "zip_sum_slices requires equal lengths");
    let mut lanes = [0.0; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xs, ys) in ca.by_ref().zip(cb.by_ref()) {
        for ((lane, &x), &y) in lanes.iter_mut().zip(xs).zip(ys) {
            *lane += f(x, y);
        }
    }
    let mut total = reduce_lanes(lanes);
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        total += f(x, y);
    }
    total
}

/// Dot product `Σ a[i]·b[i]` of two equal-length slices, in the
/// documented chunked reduction order.
#[must_use]
// ce:hot
pub fn dot_slices(a: &[f64], b: &[f64]) -> f64 {
    zip_sum_slices(a, b, |x, y| x * y)
}

/// Clamped-deficit energy `Σ max(d[i] − s[i], 0)` — the unmet MWh of
/// demand `d` under supply `s` — in the documented chunked reduction
/// order.
#[must_use]
// ce:hot
pub fn deficit_sum_slices(demand: &[f64], supply: &[f64]) -> f64 {
    zip_sum_slices(demand, supply, |d, s| (d - s).max(0.0))
}

/// Deficit-weighted reduction `Σ max(d[i] − s[i], 0) · w[i]`, e.g. unmet
/// energy times hourly carbon intensity = operational tons, in the
/// documented chunked reduction order.
#[must_use]
// ce:hot
pub fn deficit_dot_slices(demand: &[f64], supply: &[f64], weight: &[f64]) -> f64 {
    debug_assert_eq!(demand.len(), supply.len(), "deficit_dot_slices lengths");
    debug_assert_eq!(demand.len(), weight.len(), "deficit_dot_slices lengths");
    let mut lanes = [0.0; LANES];
    let mut cd = demand.chunks_exact(LANES);
    let mut cs = supply.chunks_exact(LANES);
    let mut cw = weight.chunks_exact(LANES);
    for ((ds, ss), ws) in cd.by_ref().zip(cs.by_ref()).zip(cw.by_ref()) {
        for (((lane, &d), &s), &w) in lanes.iter_mut().zip(ds).zip(ss).zip(ws) {
            *lane += (d - s).max(0.0) * w;
        }
    }
    let mut total = reduce_lanes(lanes);
    let tail = cd
        .remainder()
        .iter()
        .zip(cs.remainder())
        .zip(cw.remainder());
    for ((&d, &s), &w) in tail {
        total += (d - s).max(0.0) * w;
    }
    total
}

/// The coverage-relevant aggregates of a clamped deficit, in one pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeficitStats {
    /// Total unmet energy `Σ max(d − s, 0)`, MWh.
    pub unmet_mwh: f64,
    /// Hours whose clamped deficit is ≤ [`COVERED_EPSILON_MWH`].
    pub covered_hours: usize,
}

/// Computes unmet energy and fully-covered hour count of `demand` under
/// `supply` in a single pass. The energy folds in the documented chunked
/// reduction order; the hour count is an exact integer sum and is
/// order-independent.
#[must_use]
// ce:hot
pub fn deficit_stats_slices(demand: &[f64], supply: &[f64]) -> DeficitStats {
    debug_assert_eq!(demand.len(), supply.len(), "deficit_stats_slices lengths");
    let mut lanes = [0.0; LANES];
    let mut covered = [0usize; LANES];
    let mut cd = demand.chunks_exact(LANES);
    let mut cs = supply.chunks_exact(LANES);
    for (ds, ss) in cd.by_ref().zip(cs.by_ref()) {
        let acc = lanes.iter_mut().zip(covered.iter_mut());
        for (((lane, cov), &d), &s) in acc.zip(ds).zip(ss) {
            let u = (d - s).max(0.0);
            *lane += u;
            *cov += usize::from(u <= COVERED_EPSILON_MWH);
        }
    }
    let mut unmet_mwh = reduce_lanes(lanes);
    let mut covered_hours: usize = covered.iter().sum();
    for (&d, &s) in cd.remainder().iter().zip(cs.remainder()) {
        let u = (d - s).max(0.0);
        unmet_mwh += u;
        covered_hours += usize::from(u <= COVERED_EPSILON_MWH);
    }
    DeficitStats {
        unmet_mwh,
        covered_hours,
    }
}

/// Computes [`deficit_stats_slices`] and [`deficit_dot_slices`] in a
/// single pass: unmet energy, covered-hour count, and the
/// deficit-weighted reduction `Σ max(d[i] − s[i], 0) · w[i]`.
///
/// Both float accumulators fold in the documented chunked reduction
/// order, with identical lane assignment, so the components are
/// bitwise-identical to running [`deficit_stats_slices`] and
/// [`deficit_dot_slices`] back to back — while reading the inputs once
/// instead of twice. This is the scoring reduction of the renewables-only
/// and CAS sweep arms.
#[must_use]
// ce:hot
pub fn deficit_stats_dot_slices(
    demand: &[f64],
    supply: &[f64],
    weight: &[f64],
) -> (DeficitStats, f64) {
    debug_assert_eq!(demand.len(), supply.len(), "deficit_stats_dot lengths");
    debug_assert_eq!(demand.len(), weight.len(), "deficit_stats_dot lengths");
    let mut unmet_lanes = [0.0; LANES];
    let mut dot_lanes = [0.0; LANES];
    let mut covered = [0usize; LANES];
    let mut cd = demand.chunks_exact(LANES);
    let mut cs = supply.chunks_exact(LANES);
    let mut cw = weight.chunks_exact(LANES);
    for ((ds, ss), ws) in cd.by_ref().zip(cs.by_ref()).zip(cw.by_ref()) {
        let acc = unmet_lanes
            .iter_mut()
            .zip(dot_lanes.iter_mut())
            .zip(covered.iter_mut());
        for ((((ul, dl), cov), (&d, &s)), &w) in acc.zip(ds.iter().zip(ss)).zip(ws) {
            let u = (d - s).max(0.0);
            *ul += u;
            *cov += usize::from(u <= COVERED_EPSILON_MWH);
            *dl += u * w;
        }
    }
    let mut unmet_mwh = reduce_lanes(unmet_lanes);
    let mut dot = reduce_lanes(dot_lanes);
    let mut covered_hours: usize = covered.iter().sum();
    let tail = cd
        .remainder()
        .iter()
        .zip(cs.remainder())
        .zip(cw.remainder());
    for ((&d, &s), &w) in tail {
        let u = (d - s).max(0.0);
        unmet_mwh += u;
        covered_hours += usize::from(u <= COVERED_EPSILON_MWH);
        dot += u * w;
    }
    (
        DeficitStats {
            unmet_mwh,
            covered_hours,
        },
        dot,
    )
}

/// Aggregates of an already-clamped unmet series (e.g. a dispatch model's
/// per-hour grid draw): total energy and fully-covered hour count, in one
/// pass, with the energy folding in the documented chunked reduction
/// order.
#[must_use]
// ce:hot
pub fn unmet_stats_slices(unmet: &[f64]) -> DeficitStats {
    let mut lanes = [0.0; LANES];
    let mut covered = [0usize; LANES];
    let mut chunks = unmet.chunks_exact(LANES);
    for us in chunks.by_ref() {
        let acc = lanes.iter_mut().zip(covered.iter_mut());
        for ((lane, cov), &u) in acc.zip(us) {
            *lane += u;
            *cov += usize::from(u <= COVERED_EPSILON_MWH);
        }
    }
    let mut unmet_mwh = reduce_lanes(lanes);
    let mut covered_hours: usize = covered.iter().sum();
    for &u in chunks.remainder() {
        unmet_mwh += u;
        covered_hours += usize::from(u <= COVERED_EPSILON_MWH);
    }
    DeficitStats {
        unmet_mwh,
        covered_hours,
    }
}

/// Writes `a[i]·fa + b[i]·fb` into `out` — the fused "scale two generation
/// series and add them" step of renewable-supply construction.
///
/// Purely elementwise: `out[i]` depends on index `i` alone, so the
/// chunked traversal (structured for straight-line vector codegen) is
/// bitwise-identical to any other traversal order.
// ce:hot
pub fn scaled_sum_into(a: &[f64], fa: f64, b: &[f64], fb: f64, out: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len(), "scaled_sum_into input lengths");
    debug_assert_eq!(a.len(), out.len(), "scaled_sum_into output length");
    let mut co = out.chunks_exact_mut(LANES);
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for ((os, xs), ys) in co.by_ref().zip(ca.by_ref()).zip(cb.by_ref()) {
        for ((o, &x), &y) in os.iter_mut().zip(xs).zip(ys) {
            *o = x * fa + y * fb;
        }
    }
    let tail = co
        .into_remainder()
        .iter_mut()
        .zip(ca.remainder())
        .zip(cb.remainder());
    for ((o, &x), &y) in tail {
        *o = x * fa + y * fb;
    }
}

/// Transparent scalar reference implementations of the chunked kernels.
///
/// Each function here spells out the [module-level](self) reduction order
/// literally — lane `j` is the plain sequential sum of term indices
/// `j, j + LANES, j + 2·LANES, …` below the chunk boundary, the lanes
/// combine in the fixed tree, and the tail folds left to right — trading
/// all performance (each lane is a separate pass over the input) for
/// obviousness. They are the oracles the optimized kernels are tested
/// against, bit for bit, and the executable specification of the
/// reduction-order contract; production code should call the top-level
/// kernels instead.
///
/// Because the lane decomposition re-traverses the input once per lane,
/// the elementwise maps here take pure `Fn` closures (an oracle may apply
/// them repeatedly), unlike the single-pass `FnMut` kernels above.
pub mod reference {
    use super::{DeficitStats, COVERED_EPSILON_MWH, LANES};

    /// The full documented reduction of a term stream: per-lane
    /// sequential sums over the chunked prefix (`terms()` yields the
    /// elementwise-mapped values in index order; lane `j` keeps every
    /// `LANES`-th term starting at `j`), the fixed combination tree, then
    /// a sequential left-to-right tail fold.
    #[must_use]
    fn chunked_reduce<I: Iterator<Item = f64>>(len: usize, terms: impl Fn() -> I) -> f64 {
        let main = len - len % LANES;
        // Explicit fold from +0.0: the kernels' lanes start at +0.0, and
        // `Iterator::sum::<f64>()` would use -0.0 as its empty identity.
        let lane = |j: usize| -> f64 {
            terms()
                .take(main)
                .skip(j)
                .step_by(LANES)
                .fold(0.0, |acc, t| acc + t)
        };
        let tree = ((lane(0) + lane(1)) + (lane(2) + lane(3)))
            + ((lane(4) + lane(5)) + (lane(6) + lane(7)));
        terms().skip(main).fold(tree, |acc, t| acc + t)
    }

    /// Reference oracle for [`super::zip_sum_slices`] (pure closures
    /// only; see the [module docs](self)).
    #[must_use]
    pub fn zip_sum_slices(a: &[f64], b: &[f64], f: impl Fn(f64, f64) -> f64 + Copy) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "zip_sum_slices requires equal lengths");
        chunked_reduce(a.len(), || a.iter().zip(b).map(move |(&x, &y)| f(x, y)))
    }

    /// Reference oracle for [`super::dot_slices`].
    #[must_use]
    pub fn dot_slices(a: &[f64], b: &[f64]) -> f64 {
        zip_sum_slices(a, b, |x, y| x * y)
    }

    /// Reference oracle for [`super::deficit_sum_slices`].
    #[must_use]
    pub fn deficit_sum_slices(demand: &[f64], supply: &[f64]) -> f64 {
        zip_sum_slices(demand, supply, |d, s| (d - s).max(0.0))
    }

    /// Reference oracle for [`super::deficit_dot_slices`].
    #[must_use]
    pub fn deficit_dot_slices(demand: &[f64], supply: &[f64], weight: &[f64]) -> f64 {
        debug_assert_eq!(demand.len(), supply.len(), "deficit_dot_slices lengths");
        debug_assert_eq!(demand.len(), weight.len(), "deficit_dot_slices lengths");
        chunked_reduce(demand.len(), || {
            demand
                .iter()
                .zip(supply)
                .zip(weight)
                .map(|((&d, &s), &w)| (d - s).max(0.0) * w)
        })
    }

    /// Reference oracle for [`super::deficit_stats_slices`]. The energy
    /// follows the documented reduction order; the covered-hour count is
    /// an exact integer and order-independent.
    #[must_use]
    pub fn deficit_stats_slices(demand: &[f64], supply: &[f64]) -> DeficitStats {
        let covered_hours = demand
            .iter()
            .zip(supply)
            .map(|(&d, &s)| (d - s).max(0.0))
            .filter(|&u| u <= COVERED_EPSILON_MWH)
            .count();
        DeficitStats {
            unmet_mwh: deficit_sum_slices(demand, supply),
            covered_hours,
        }
    }

    /// Reference oracle for [`super::deficit_stats_dot_slices`]: the
    /// separate stats and dot oracles, whose components the fused kernel
    /// must reproduce bit for bit.
    #[must_use]
    pub fn deficit_stats_dot_slices(
        demand: &[f64],
        supply: &[f64],
        weight: &[f64],
    ) -> (DeficitStats, f64) {
        (
            deficit_stats_slices(demand, supply),
            deficit_dot_slices(demand, supply, weight),
        )
    }

    /// Reference oracle for [`super::unmet_stats_slices`].
    #[must_use]
    pub fn unmet_stats_slices(unmet: &[f64]) -> DeficitStats {
        DeficitStats {
            unmet_mwh: chunked_reduce(unmet.len(), || unmet.iter().copied()),
            covered_hours: unmet.iter().filter(|&&u| u <= COVERED_EPSILON_MWH).count(),
        }
    }

    /// Reference oracle for [`super::scaled_sum_into`]: the plain
    /// sequential elementwise loop (chunking cannot change an
    /// elementwise map, so no lane structure is needed here).
    pub fn scaled_sum_into(a: &[f64], fa: f64, b: &[f64], fb: f64, out: &mut [f64]) {
        debug_assert_eq!(a.len(), b.len(), "scaled_sum_into input lengths");
        debug_assert_eq!(a.len(), out.len(), "scaled_sum_into output length");
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = x * fa + y * fb;
        }
    }
}

impl HourlySeries {
    /// Fused `zip_with(other, f)` reduction without the intermediate
    /// series, in the documented chunked reduction order (see
    /// [`zip_sum_slices`]).
    ///
    /// # Errors
    ///
    /// Returns an alignment error if the series differ in start or length.
    // ce:hot
    pub fn zip_sum(
        &self,
        other: &Self,
        f: impl FnMut(f64, f64) -> f64,
    ) -> Result<f64, TimeSeriesError> {
        self.check_aligned(other)?;
        Ok(zip_sum_slices(self.values(), other.values(), f))
    }

    /// Dot product `Σ self[i]·other[i]`.
    ///
    /// # Errors
    ///
    /// Returns an alignment error if the series differ in start or length.
    // ce:hot
    pub fn dot(&self, other: &Self) -> Result<f64, TimeSeriesError> {
        self.check_aligned(other)?;
        Ok(dot_slices(self.values(), other.values()))
    }

    /// Unmet energy of `self` (demand) under `supply`:
    /// `Σ max(self − supply, 0)`.
    ///
    /// # Errors
    ///
    /// Returns an alignment error if the series differ in start or length.
    // ce:hot
    pub fn deficit_sum(&self, supply: &Self) -> Result<f64, TimeSeriesError> {
        self.check_aligned(supply)?;
        Ok(deficit_sum_slices(self.values(), supply.values()))
    }

    /// Deficit-weighted reduction
    /// `Σ max(self − supply, 0) · weight` — with `weight` an hourly carbon
    /// intensity this is operational carbon in one pass.
    ///
    /// # Errors
    ///
    /// Returns an alignment error if any pair of series is misaligned.
    // ce:hot
    pub fn deficit_dot(&self, supply: &Self, weight: &Self) -> Result<f64, TimeSeriesError> {
        self.check_aligned(supply)?;
        self.check_aligned(weight)?;
        Ok(deficit_dot_slices(
            self.values(),
            supply.values(),
            weight.values(),
        ))
    }

    /// Unmet energy and covered-hour count of `self` (demand) under
    /// `supply`, in one pass.
    ///
    /// # Errors
    ///
    /// Returns an alignment error if the series differ in start or length.
    // ce:hot
    pub fn deficit_stats(&self, supply: &Self) -> Result<DeficitStats, TimeSeriesError> {
        self.check_aligned(supply)?;
        Ok(deficit_stats_slices(self.values(), supply.values()))
    }

    /// [`HourlySeries::deficit_stats`] and [`HourlySeries::deficit_dot`]
    /// fused into one pass over the inputs; both components are
    /// bitwise-identical to the separate calls.
    ///
    /// # Errors
    ///
    /// Returns an alignment error if any pair of series is misaligned.
    // ce:hot
    pub fn deficit_stats_dot(
        &self,
        supply: &Self,
        weight: &Self,
    ) -> Result<(DeficitStats, f64), TimeSeriesError> {
        self.check_aligned(supply)?;
        self.check_aligned(weight)?;
        Ok(deficit_stats_dot_slices(
            self.values(),
            supply.values(),
            weight.values(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Timestamp;

    fn start() -> Timestamp {
        Timestamp::start_of_year(2020)
    }

    /// Edge and bulk lengths for the chunked-vs-reference pins: empty,
    /// single element, one short of a chunk, exactly one chunk, one past a
    /// chunk, and a full year of hours.
    const PIN_LENGTHS: [usize; 6] = [0, 1, 7, 8, 9, 8760];

    /// Irregular aligned fixtures of length `n` exercising negative
    /// deficits, exact zeros, and magnitudes spanning several orders.
    fn fixtures_of_len(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let demand: Vec<f64> = (0..n)
            .map(|h| 10.0 + (h as f64 * 0.7).sin() * 9.0 + (h % 13) as f64 * 0.01)
            .collect();
        let supply: Vec<f64> = (0..n)
            .map(|h| (h as f64 * 0.31).cos().abs() * 25.0 * ((h % 7) as f64 / 6.0))
            .collect();
        let weight: Vec<f64> = (0..n).map(|h| 0.1 + (h % 24) as f64 * 0.03).collect();
        (demand, supply, weight)
    }

    /// Series-typed fixtures for the checked wrappers.
    fn fixtures() -> (HourlySeries, HourlySeries, HourlySeries) {
        let (d, s, w) = fixtures_of_len(1000);
        (
            HourlySeries::from_values(start(), d),
            HourlySeries::from_values(start(), s),
            HourlySeries::from_values(start(), w),
        )
    }

    #[test]
    fn chunked_kernels_match_reference_oracles_on_pin_lengths() {
        for n in PIN_LENGTHS {
            let (d, s, w) = fixtures_of_len(n);
            assert_eq!(
                dot_slices(&d, &s).to_bits(),
                reference::dot_slices(&d, &s).to_bits(),
                "dot_slices diverged at len {n}"
            );
            assert_eq!(
                deficit_sum_slices(&d, &s).to_bits(),
                reference::deficit_sum_slices(&d, &s).to_bits(),
                "deficit_sum_slices diverged at len {n}"
            );
            assert_eq!(
                deficit_dot_slices(&d, &s, &w).to_bits(),
                reference::deficit_dot_slices(&d, &s, &w).to_bits(),
                "deficit_dot_slices diverged at len {n}"
            );
            let fast = deficit_stats_slices(&d, &s);
            let oracle = reference::deficit_stats_slices(&d, &s);
            assert_eq!(
                fast.unmet_mwh.to_bits(),
                oracle.unmet_mwh.to_bits(),
                "deficit_stats_slices energy diverged at len {n}"
            );
            assert_eq!(
                fast.covered_hours, oracle.covered_hours,
                "deficit_stats_slices count diverged at len {n}"
            );
            let zs = zip_sum_slices(&d, &s, |x, y| (x - y).abs());
            let zr = reference::zip_sum_slices(&d, &s, |x, y| (x - y).abs());
            assert_eq!(
                zs.to_bits(),
                zr.to_bits(),
                "zip_sum_slices diverged at len {n}"
            );
            let unmet: Vec<f64> = d.iter().zip(&s).map(|(&x, &y)| (x - y).max(0.0)).collect();
            let fast = unmet_stats_slices(&unmet);
            let oracle = reference::unmet_stats_slices(&unmet);
            assert_eq!(
                fast.unmet_mwh.to_bits(),
                oracle.unmet_mwh.to_bits(),
                "unmet_stats_slices energy diverged at len {n}"
            );
            assert_eq!(
                fast.covered_hours, oracle.covered_hours,
                "unmet_stats_slices count diverged at len {n}"
            );
            let mut out_fast = vec![f64::NAN; n];
            let mut out_ref = vec![f64::NAN; n];
            scaled_sum_into(&d, 0.137, &s, 2.91, &mut out_fast);
            reference::scaled_sum_into(&d, 0.137, &s, 2.91, &mut out_ref);
            let fast_bits: Vec<u64> = out_fast.iter().map(|v| v.to_bits()).collect();
            let ref_bits: Vec<u64> = out_ref.iter().map(|v| v.to_bits()).collect();
            assert_eq!(fast_bits, ref_bits, "scaled_sum_into diverged at len {n}");
        }
    }

    #[test]
    fn stats_dot_fused_matches_separate_oracles_on_pin_lengths() {
        for n in PIN_LENGTHS {
            let (d, s, w) = fixtures_of_len(n);
            let (stats, dot) = deficit_stats_dot_slices(&d, &s, &w);
            let (oracle_stats, oracle_dot) = reference::deficit_stats_dot_slices(&d, &s, &w);
            assert_eq!(
                stats.unmet_mwh.to_bits(),
                oracle_stats.unmet_mwh.to_bits(),
                "fused unmet diverged at len {n}"
            );
            assert_eq!(
                stats.covered_hours, oracle_stats.covered_hours,
                "fused count diverged at len {n}"
            );
            assert_eq!(
                dot.to_bits(),
                oracle_dot.to_bits(),
                "fused dot diverged at len {n}"
            );
        }
    }

    #[test]
    fn zip_sum_applies_closure_in_index_order() {
        // A stateful closure must observe every pair exactly once, in
        // increasing index order, regardless of the lane structure.
        let n = 21; // two full chunks + a 5-element tail
        let (a, b, _) = fixtures_of_len(n);
        let mut seen = Vec::new();
        let _ = zip_sum_slices(&a, &b, |x, y| {
            seen.push((x, y));
            x + y
        });
        let expected: Vec<(f64, f64)> = a.iter().zip(&b).map(|(&x, &y)| (x, y)).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn reduction_sums_all_elements_exactly_on_integer_inputs() {
        // Integer-valued inputs sum exactly in any association, so the
        // chunked total must equal the plain sum — a coverage check that
        // no element is dropped or double-counted around chunk edges.
        for n in PIN_LENGTHS {
            let a: Vec<f64> = (0..n).map(|i| (i % 97) as f64).collect();
            let ones = vec![1.0; n];
            let expected: f64 = a.iter().sum();
            assert_eq!(dot_slices(&a, &ones), expected, "len {n}");
            let zeros = vec![0.0; n];
            assert_eq!(deficit_sum_slices(&a, &zeros), expected, "len {n}");
        }
    }

    #[test]
    fn dot_is_bitwise_identical_to_reference() {
        let (a, b, _) = fixtures();
        let oracle = reference::dot_slices(a.values(), b.values());
        assert_eq!(oracle.to_bits(), a.dot(&b).unwrap().to_bits());
    }

    #[test]
    fn deficit_sum_is_bitwise_identical_to_reference() {
        let (d, s, _) = fixtures();
        let oracle = reference::deficit_sum_slices(d.values(), s.values());
        assert_eq!(oracle.to_bits(), d.deficit_sum(&s).unwrap().to_bits());
    }

    #[test]
    fn deficit_dot_is_bitwise_identical_to_reference() {
        let (d, s, w) = fixtures();
        let oracle = reference::deficit_dot_slices(d.values(), s.values(), w.values());
        let fused = d.deficit_dot(&s, &w).unwrap();
        assert_eq!(oracle.to_bits(), fused.to_bits());
    }

    #[test]
    fn deficit_stats_count_matches_materialized_series() {
        // The covered-hour count is an exact integer and must agree with
        // counting over the materialized deficit series whatever the
        // reduction order; the energy matches the reference oracle.
        let (d, s, _) = fixtures();
        let unmet = d.zip_with(&s, |x, y| (x - y).max(0.0)).unwrap();
        let stats = d.deficit_stats(&s).unwrap();
        assert_eq!(
            stats.covered_hours,
            unmet.count_where(|u| u <= COVERED_EPSILON_MWH)
        );
        let oracle = reference::deficit_stats_slices(d.values(), s.values());
        assert_eq!(stats.unmet_mwh.to_bits(), oracle.unmet_mwh.to_bits());
        // Sanity: the fixture has both covered and uncovered hours.
        assert!(stats.covered_hours > 0 && stats.covered_hours < d.len());
    }

    #[test]
    fn deficit_stats_dot_matches_separate_kernels_bitwise() {
        let (d, s, w) = fixtures();
        let (stats, dot) = d.deficit_stats_dot(&s, &w).unwrap();
        let separate_stats = d.deficit_stats(&s).unwrap();
        let separate_dot = d.deficit_dot(&s, &w).unwrap();
        assert_eq!(
            stats.unmet_mwh.to_bits(),
            separate_stats.unmet_mwh.to_bits()
        );
        assert_eq!(stats.covered_hours, separate_stats.covered_hours);
        assert_eq!(dot.to_bits(), separate_dot.to_bits());
    }

    #[test]
    fn scaled_sum_matches_scale_then_add() {
        // Elementwise kernel: bitwise equal to the operator formulation
        // regardless of chunking.
        let (a, b, _) = fixtures();
        let (fa, fb) = (0.137, 2.91);
        let naive = (&(&a * fa) + &(&b * fb)).into_values();
        let mut out = vec![0.0; a.len()];
        scaled_sum_into(a.values(), fa, b.values(), fb, &mut out);
        assert_eq!(naive, out);
    }

    #[test]
    fn zero_factors_produce_exact_zeros() {
        let (a, b, _) = fixtures();
        let mut out = vec![f64::NAN; a.len()];
        scaled_sum_into(a.values(), 0.0, b.values(), 0.0, &mut out);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn misaligned_series_error() {
        let a = HourlySeries::zeros(start(), 5);
        let b = HourlySeries::zeros(start(), 6);
        assert!(a.dot(&b).is_err());
        assert!(a.deficit_sum(&b).is_err());
        assert!(a.deficit_stats(&b).is_err());
        assert!(a.zip_sum(&b, |x, y| x + y).is_err());
        let c = HourlySeries::zeros(start().plus_hours(1), 5);
        assert!(a.deficit_dot(&b, &c).is_err());
        assert!(a.deficit_dot(&c, &c).is_err());
        assert!(a.deficit_stats_dot(&b, &c).is_err());
        assert!(a.deficit_stats_dot(&c, &c).is_err());
    }

    #[test]
    fn unmet_stats_matches_deficit_stats_on_clamped_series() {
        let demand = [5.0f64, 2.0, 4.0, 1.0];
        let supply = [3.0f64, 2.5, 4.0, 0.0];
        let unmet: Vec<f64> = demand
            .iter()
            .zip(&supply)
            .map(|(&d, &s)| (d - s).max(0.0))
            .collect();
        let direct = unmet_stats_slices(&unmet);
        let reference = deficit_stats_slices(&demand, &supply);
        assert_eq!(direct.unmet_mwh, reference.unmet_mwh);
        assert_eq!(direct.covered_hours, reference.covered_hours);
    }

    #[test]
    fn empty_slices_sum_to_zero() {
        assert_eq!(dot_slices(&[], &[]), 0.0);
        assert_eq!(deficit_sum_slices(&[], &[]), 0.0);
        let stats = deficit_stats_slices(&[], &[]);
        assert_eq!(stats.unmet_mwh, 0.0);
        assert_eq!(stats.covered_hours, 0);
    }
}
