//! Hourly time-series substrate for Carbon Explorer.
//!
//! Carbon Explorer consumes and produces *hourly* time series: datacenter
//! power demand, renewable generation per balancing authority, grid carbon
//! intensity, battery state of charge, and so on. The reference
//! implementation leans on pandas for this; this crate provides the small,
//! focused subset of that functionality the framework needs:
//!
//! - a simple calendar ([`time`]) with leap-year handling and hour-of-year
//!   indexing,
//! - the [`HourlySeries`] container ([`series`]) with elementwise arithmetic,
//!   zipping and mapping,
//! - summary statistics ([`stats`]): histograms, quantiles, correlation,
//!   rolling means,
//! - resampling ([`resample`]): daily totals, average-day (hour-of-day)
//!   profiles, windowed slices,
//! - minimal CSV I/O ([`csv`]) so series can be exported for plotting.
//!
//! # Example
//!
//! ```
//! use ce_timeseries::{HourlySeries, Timestamp};
//!
//! // A flat 10 MW demand for the first day of 2020.
//! let demand = HourlySeries::constant(Timestamp::start_of_year(2020), 24, 10.0);
//! assert_eq!(demand.sum(), 240.0); // 240 MWh over the day
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
mod error;
pub mod forecast;
pub mod frame;
pub mod kernels;
pub mod resample;
pub mod series;
pub mod stats;
pub mod time;

pub use error::TimeSeriesError;
pub use frame::Frame;
pub use kernels::DeficitStats;
pub use series::HourlySeries;
pub use time::{Date, Timestamp, HOURS_PER_DAY};
