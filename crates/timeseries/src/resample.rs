//! Resampling between hourly, daily, and hour-of-day granularities.
//!
//! The paper's supply characterization (Figure 5) needs two reductions of a
//! year-long hourly series: the *average day* (mean generation at each hour
//! of the day across the year) and the *daily totals* whose histogram shows
//! day-to-day fluctuation. Both live here, alongside generic chunked
//! reductions.

use crate::series::HourlySeries;
use crate::time::HOURS_PER_DAY;

/// Sums each full day (24-hour chunk); a trailing partial day is dropped.
///
/// The result is indexed by day, not by hour, so it is returned as a plain
/// `Vec` rather than an [`HourlySeries`].
///
/// ```
/// use ce_timeseries::{HourlySeries, Timestamp};
/// use ce_timeseries::resample::daily_totals;
/// let s = HourlySeries::constant(Timestamp::start_of_year(2020), 48, 2.0);
/// assert_eq!(daily_totals(&s), vec![48.0, 48.0]);
/// ```
pub fn daily_totals(series: &HourlySeries) -> Vec<f64> {
    series
        .values()
        .chunks_exact(HOURS_PER_DAY)
        .map(|day| day.iter().sum())
        .collect()
}

/// Mean of each full day; a trailing partial day is dropped.
pub fn daily_means(series: &HourlySeries) -> Vec<f64> {
    daily_totals(series)
        .into_iter()
        .map(|total| total / HOURS_PER_DAY as f64)
        .collect()
}

/// The "average day": for each hour-of-day `h` (0..24), the mean of all
/// samples that fall on hour `h`, assuming the series starts at midnight.
///
/// Returns an array of 24 means. Hours with no samples are 0.0.
pub fn average_day_profile(series: &HourlySeries) -> [f64; HOURS_PER_DAY] {
    debug_assert_eq!(
        series.start().hour(),
        0,
        "average_day_profile assumes a midnight-aligned series"
    );
    let mut sums = [0.0; HOURS_PER_DAY];
    let mut counts = [0usize; HOURS_PER_DAY];
    for (i, &v) in series.values().iter().enumerate() {
        let h = i % HOURS_PER_DAY;
        sums[h] += v;
        counts[h] += 1;
    }
    let mut out = [0.0; HOURS_PER_DAY];
    for h in 0..HOURS_PER_DAY {
        if counts[h] > 0 {
            out[h] = sums[h] / counts[h] as f64;
        }
    }
    out
}

/// Splits the series into consecutive full days, yielding one 24-sample
/// window per day (a trailing partial day is dropped).
pub fn days(series: &HourlySeries) -> Vec<HourlySeries> {
    let full_days = series.len() / HOURS_PER_DAY;
    (0..full_days)
        .map(|d| {
            // Every full day fits by construction, so the slice below is
            // in bounds and this path is infallible (unlike the checked
            // `window`, which would force an unreachable error arm here).
            let start = d * HOURS_PER_DAY;
            HourlySeries::from_values(
                series.timestamp(start),
                series.values()[start..start + HOURS_PER_DAY].to_vec(),
            )
        })
        .collect()
}

/// Generic chunked reduction: applies `f` to consecutive `chunk` -sized
/// windows (trailing partial chunk dropped).
pub fn reduce_chunks(
    series: &HourlySeries,
    chunk: usize,
    f: impl FnMut(&[f64]) -> f64,
) -> Vec<f64> {
    if chunk == 0 {
        return Vec::new();
    }
    series.values().chunks_exact(chunk).map(f).collect()
}

/// Repeats a 24-hour profile across `days` days, producing an hourly series.
pub fn tile_day_profile(
    start: crate::time::Timestamp,
    profile: &[f64; HOURS_PER_DAY],
    days: usize,
) -> HourlySeries {
    HourlySeries::from_fn(start, days * HOURS_PER_DAY, |h| profile[h % HOURS_PER_DAY])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn start() -> Timestamp {
        Timestamp::start_of_year(2020)
    }

    #[test]
    fn daily_totals_drops_partial_day() {
        let s = HourlySeries::constant(start(), 50, 1.0);
        assert_eq!(daily_totals(&s), vec![24.0, 24.0]);
        assert_eq!(daily_means(&s), vec![1.0, 1.0]);
    }

    #[test]
    fn average_day_profile_averages_across_days() {
        // Day 1: hour index, day 2: hour index + 24 → average = index + 12.
        let s = HourlySeries::from_fn(start(), 48, |h| h as f64);
        let profile = average_day_profile(&s);
        for (h, &v) in profile.iter().enumerate() {
            assert!((v - (h as f64 + 12.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn average_day_profile_handles_partial_final_day() {
        // 25 hours: hour 0 appears twice (values 0 and 24), others once.
        let s = HourlySeries::from_fn(start(), 25, |h| h as f64);
        let profile = average_day_profile(&s);
        assert_eq!(profile[0], 12.0);
        assert_eq!(profile[1], 1.0);
    }

    #[test]
    fn days_splits_into_windows() {
        let s = HourlySeries::from_fn(start(), 72, |h| h as f64);
        let ds = days(&s);
        assert_eq!(ds.len(), 3);
        assert_eq!(ds[1][0], 24.0);
        assert_eq!(ds[2].start(), start().plus_hours(48));
    }

    #[test]
    fn reduce_chunks_generic() {
        let s = HourlySeries::from_values(start(), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let maxes = reduce_chunks(&s, 2, |c| c.iter().copied().fold(f64::MIN, f64::max));
        assert_eq!(maxes, vec![2.0, 4.0]);
        assert!(reduce_chunks(&s, 0, |_| 0.0).is_empty());
    }

    #[test]
    fn tile_day_profile_repeats() {
        let mut profile = [0.0; HOURS_PER_DAY];
        profile[6] = 3.0;
        let s = tile_day_profile(start(), &profile, 2);
        assert_eq!(s.len(), 48);
        assert_eq!(s[6], 3.0);
        assert_eq!(s[30], 3.0);
        assert_eq!(s[7], 0.0);
    }
}
