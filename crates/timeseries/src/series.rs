//! The [`HourlySeries`] container.

use crate::time::Timestamp;
use crate::TimeSeriesError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Index, Mul, Sub};

/// A contiguous series of hourly samples anchored at a start [`Timestamp`].
///
/// Sample `i` covers the hour beginning at `start + i` hours. Values are
/// `f64` in whatever unit the caller chooses; Carbon Explorer uses MW for
/// power series and MWh for energy series (the two are numerically equal at
/// hourly resolution).
///
/// Elementwise binary operations (`+`, `-`, via operator overloads, and the
/// checked [`HourlySeries::try_add`]-style methods) require both operands to
/// have the same start and length.
///
/// # Example
///
/// ```
/// use ce_timeseries::{HourlySeries, Timestamp};
///
/// let start = Timestamp::start_of_year(2020);
/// let demand = HourlySeries::constant(start, 4, 10.0);
/// let supply = HourlySeries::from_values(start, vec![12.0, 8.0, 10.0, 15.0]);
/// let deficit = demand.zip_with(&supply, |d, s| (d - s).max(0.0)).unwrap();
/// assert_eq!(deficit.values(), &[0.0, 2.0, 0.0, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HourlySeries {
    start: Timestamp,
    values: Vec<f64>,
}

impl HourlySeries {
    /// Creates a series from explicit values.
    pub fn from_values(start: Timestamp, values: Vec<f64>) -> Self {
        Self { start, values }
    }

    /// Creates a series of `len` copies of `value`.
    pub fn constant(start: Timestamp, len: usize, value: f64) -> Self {
        Self {
            start,
            values: vec![value; len],
        }
    }

    /// Creates a series of zeros.
    pub fn zeros(start: Timestamp, len: usize) -> Self {
        Self::constant(start, len, 0.0)
    }

    /// Creates a series by evaluating `f` at each hour offset.
    ///
    /// ```
    /// use ce_timeseries::{HourlySeries, Timestamp};
    /// let s = HourlySeries::from_fn(Timestamp::start_of_year(2020), 3, |h| h as f64);
    /// assert_eq!(s.values(), &[0.0, 1.0, 2.0]);
    /// ```
    pub fn from_fn(start: Timestamp, len: usize, mut f: impl FnMut(usize) -> f64) -> Self {
        Self {
            start,
            values: (0..len).map(&mut f).collect(),
        }
    }

    /// The timestamp of the first sample.
    pub fn start(&self) -> Timestamp {
        self.start
    }

    /// The timestamp of sample `i`.
    pub fn timestamp(&self, i: usize) -> Timestamp {
        self.start.plus_hours(i)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrow the raw values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutably borrow the raw values.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consumes the series, returning its values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Sample `i`, or `None` if out of bounds.
    pub fn get(&self, i: usize) -> Option<f64> {
        self.values.get(i).copied()
    }

    /// Iterate over `(Timestamp, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Timestamp, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(move |(i, &v)| (self.start.plus_hours(i), v))
    }

    /// Checks that `other` is aligned (same start, same length) with `self`.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::LengthMismatch`] or
    /// [`TimeSeriesError::StartMismatch`].
    pub fn check_aligned(&self, other: &Self) -> Result<(), TimeSeriesError> {
        if self.values.len() != other.values.len() {
            return Err(TimeSeriesError::LengthMismatch {
                left: self.values.len(),
                right: other.values.len(),
            });
        }
        if self.start != other.start {
            return Err(TimeSeriesError::StartMismatch);
        }
        Ok(())
    }

    /// Elementwise combination of two aligned series.
    ///
    /// # Errors
    ///
    /// Returns an alignment error if the series differ in start or length.
    pub fn zip_with(
        &self,
        other: &Self,
        mut f: impl FnMut(f64, f64) -> f64,
    ) -> Result<Self, TimeSeriesError> {
        self.check_aligned(other)?;
        Ok(Self {
            start: self.start,
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Elementwise transformation.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Self {
        Self {
            start: self.start,
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Multiplies every sample by `factor`.
    pub fn scale(&self, factor: f64) -> Self {
        self.map(|v| v * factor)
    }

    /// Clamps every sample to at least `min`.
    pub fn clamp_min(&self, min: f64) -> Self {
        self.map(|v| v.max(min))
    }

    /// Clamps every sample to at most `max`.
    pub fn clamp_max(&self, max: f64) -> Self {
        self.map(|v| v.min(max))
    }

    /// Checked elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns an alignment error if the series differ in start or length.
    pub fn try_add(&self, other: &Self) -> Result<Self, TimeSeriesError> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Checked elementwise difference (`self - other`).
    ///
    /// # Errors
    ///
    /// Returns an alignment error if the series differ in start or length.
    pub fn try_sub(&self, other: &Self) -> Result<Self, TimeSeriesError> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Sum of all samples. For a power series in MW this is energy in MWh.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Arithmetic mean, or 0.0 for an empty series.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.sum() / self.values.len() as f64
        }
    }

    /// Smallest sample, or `None` for an empty series.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Largest sample, or `None` for an empty series.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Index of the largest sample (first on ties), or `None` if empty.
    pub fn argmax(&self) -> Option<usize> {
        let max = self.max()?;
        // ce:allow(float-eq, reason = "intentional bitwise re-find of the exact value reduce(f64::max) returned")
        self.values.iter().position(|&v| v == max)
    }

    /// Index of the smallest sample (first on ties), or `None` if empty.
    pub fn argmin(&self) -> Option<usize> {
        let min = self.min()?;
        // ce:allow(float-eq, reason = "intentional bitwise re-find of the exact value reduce(f64::min) returned")
        self.values.iter().position(|&v| v == min)
    }

    /// Number of samples for which `pred` holds.
    pub fn count_where(&self, mut pred: impl FnMut(f64) -> bool) -> usize {
        self.values.iter().filter(|&&v| pred(v)).count()
    }

    /// A sub-series covering `offset..offset + len` hours.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::OutOfBounds`] if the window does not fit.
    pub fn window(&self, offset: usize, len: usize) -> Result<Self, TimeSeriesError> {
        let end = offset
            .checked_add(len)
            .ok_or(TimeSeriesError::OutOfBounds {
                index: usize::MAX,
                len: self.values.len(),
            })?;
        if end > self.values.len() {
            return Err(TimeSeriesError::OutOfBounds {
                index: end,
                len: self.values.len(),
            });
        }
        Ok(Self {
            start: self.start.plus_hours(offset),
            values: self.values[offset..end].to_vec(),
        })
    }

    /// Appends a sample to the end of the series.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }
}

impl Index<usize> for HourlySeries {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.values[i]
    }
}

impl Add<&HourlySeries> for &HourlySeries {
    type Output = HourlySeries;

    /// # Panics
    ///
    /// Panics if the operands are misaligned; use
    /// [`HourlySeries::try_add`] for a checked version.
    fn add(self, rhs: &HourlySeries) -> HourlySeries {
        self.try_add(rhs).expect("series aligned for +")
    }
}

impl Sub<&HourlySeries> for &HourlySeries {
    type Output = HourlySeries;

    /// # Panics
    ///
    /// Panics if the operands are misaligned; use
    /// [`HourlySeries::try_sub`] for a checked version.
    fn sub(self, rhs: &HourlySeries) -> HourlySeries {
        self.try_sub(rhs).expect("series aligned for -")
    }
}

impl Mul<f64> for &HourlySeries {
    type Output = HourlySeries;

    fn mul(self, rhs: f64) -> HourlySeries {
        self.scale(rhs)
    }
}

impl Div<f64> for &HourlySeries {
    type Output = HourlySeries;

    fn div(self, rhs: f64) -> HourlySeries {
        self.scale(1.0 / rhs)
    }
}

impl fmt::Display for HourlySeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "HourlySeries[{} .. {} samples, mean {:.3}]",
            self.start,
            self.values.len(),
            self.mean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn start() -> Timestamp {
        Timestamp::start_of_year(2020)
    }

    #[test]
    fn constructors() {
        let s = HourlySeries::constant(start(), 5, 2.0);
        assert_eq!(s.len(), 5);
        assert_eq!(s.sum(), 10.0);
        let z = HourlySeries::zeros(start(), 3);
        assert_eq!(z.sum(), 0.0);
        assert!(!z.is_empty());
        let f = HourlySeries::from_fn(start(), 4, |h| (h * h) as f64);
        assert_eq!(f.values(), &[0.0, 1.0, 4.0, 9.0]);
    }

    #[test]
    fn arithmetic_and_alignment() {
        let a = HourlySeries::from_values(start(), vec![1.0, 2.0, 3.0]);
        let b = HourlySeries::from_values(start(), vec![4.0, 5.0, 6.0]);
        assert_eq!((&a + &b).values(), &[5.0, 7.0, 9.0]);
        assert_eq!((&b - &a).values(), &[3.0, 3.0, 3.0]);
        assert_eq!((&a * 2.0).values(), &[2.0, 4.0, 6.0]);
        assert_eq!((&b / 2.0).values(), &[2.0, 2.5, 3.0]);

        let misaligned = HourlySeries::from_values(start().plus_hours(1), vec![1.0, 1.0, 1.0]);
        assert_eq!(a.try_add(&misaligned), Err(TimeSeriesError::StartMismatch));
        let short = HourlySeries::from_values(start(), vec![1.0]);
        assert!(matches!(
            a.try_add(&short),
            Err(TimeSeriesError::LengthMismatch { left: 3, right: 1 })
        ));
    }

    #[test]
    fn statistics() {
        let s = HourlySeries::from_values(start(), vec![3.0, -1.0, 7.0, 0.0]);
        assert_eq!(s.mean(), 2.25);
        assert_eq!(s.min(), Some(-1.0));
        assert_eq!(s.max(), Some(7.0));
        assert_eq!(s.argmax(), Some(2));
        assert_eq!(s.argmin(), Some(1));
        assert_eq!(s.count_where(|v| v > 0.0), 2);
    }

    #[test]
    fn empty_series_statistics() {
        let s = HourlySeries::zeros(start(), 0);
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.argmax(), None);
    }

    #[test]
    fn window_slices_and_rebases_start() {
        let s = HourlySeries::from_fn(start(), 48, |h| h as f64);
        let w = s.window(24, 24).unwrap();
        assert_eq!(w.len(), 24);
        assert_eq!(w[0], 24.0);
        assert_eq!(w.start(), start().plus_hours(24));
        assert!(s.window(40, 10).is_err());
        assert!(s.window(48, 0).is_ok());
    }

    #[test]
    fn clamping() {
        let s = HourlySeries::from_values(start(), vec![-2.0, 0.5, 3.0]);
        assert_eq!(s.clamp_min(0.0).values(), &[0.0, 0.5, 3.0]);
        assert_eq!(s.clamp_max(1.0).values(), &[-2.0, 0.5, 1.0]);
    }

    #[test]
    fn iter_yields_timestamps() {
        let s = HourlySeries::from_values(start(), vec![1.0, 2.0]);
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(pairs[0], (start(), 1.0));
        assert_eq!(pairs[1], (start().plus_hours(1), 2.0));
    }

    #[test]
    fn timestamp_of_sample() {
        let s = HourlySeries::zeros(start(), 30);
        assert_eq!(s.timestamp(25).date().day(), 2);
    }

    #[test]
    fn serde_roundtrip() {
        // serde support is exercised through the serde_test-free path of
        // serializing into a format-agnostic in-memory representation.
        let s = HourlySeries::from_values(start(), vec![1.5, 2.5]);
        let cloned = s.clone();
        assert_eq!(s, cloned);
    }

    #[test]
    fn display_mentions_len_and_mean() {
        let s = HourlySeries::constant(start(), 10, 4.0);
        let text = s.to_string();
        assert!(text.contains("10 samples"));
        assert!(text.contains("4.000"));
    }
}
