//! Summary statistics over [`HourlySeries`] and raw slices.
//!
//! These back the paper's characterization figures: the daily-total
//! histograms of Figure 5, the utilization/power correlation of Figure 3,
//! and the quantile analysis behind the "best ten days of the year" claim.

use crate::series::HourlySeries;
use crate::TimeSeriesError;

/// A fixed-width histogram over a closed value range.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
}

impl Histogram {
    /// Builds a histogram of `values` with `bins` equal-width bins spanning
    /// `[lo, hi]`. Values outside the range are clamped into the edge bins.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::Empty`] if `bins == 0` or `hi <= lo`.
    pub fn new(values: &[f64], lo: f64, hi: f64, bins: usize) -> Result<Self, TimeSeriesError> {
        if bins == 0 || hi <= lo {
            return Err(TimeSeriesError::Empty);
        }
        let mut counts = vec![0usize; bins];
        let width = (hi - lo) / bins as f64;
        for &v in values {
            let idx = ((v - lo) / width).floor();
            let idx = idx.clamp(0.0, (bins - 1) as f64) as usize;
            counts[idx] += 1;
        }
        Ok(Self { lo, hi, counts })
    }

    /// Builds a histogram spanning the observed min..max of `values`.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::Empty`] for empty input or zero bins.
    pub fn from_values(values: &[f64], bins: usize) -> Result<Self, TimeSeriesError> {
        let lo = values
            .iter()
            .copied()
            .reduce(f64::min)
            .ok_or(TimeSeriesError::Empty)?;
        let hi = values
            .iter()
            .copied()
            .reduce(f64::max)
            .ok_or(TimeSeriesError::Empty)?;
        let hi = if hi > lo { hi } else { lo + 1.0 };
        Self::new(values, lo, hi, bins)
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Center value of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }

    /// Total number of samples recorded.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Iterator over `(bin_center, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, usize)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.bin_center(i), c))
    }
}

/// Population standard deviation of `values` (0.0 for fewer than 2 samples).
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// Coefficient of variation (std dev / mean); 0.0 if the mean is 0.
pub fn coefficient_of_variation(values: &[f64]) -> f64 {
    let mean = if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    };
    // ce:allow(float-eq, reason = "exact-zero guard against division by zero; an epsilon would misclassify tiny real means")
    if mean == 0.0 {
        0.0
    } else {
        std_dev(values) / mean
    }
}

/// Pearson correlation coefficient between two equal-length slices.
///
/// # Errors
///
/// Returns [`TimeSeriesError::LengthMismatch`] for unequal lengths and
/// [`TimeSeriesError::Empty`] for fewer than 2 samples.
pub fn pearson(a: &[f64], b: &[f64]) -> Result<f64, TimeSeriesError> {
    if a.len() != b.len() {
        return Err(TimeSeriesError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    if a.len() < 2 {
        return Err(TimeSeriesError::Empty);
    }
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    // ce:allow(float-eq, reason = "a constant series has exactly zero variance; correlation is undefined and reported as 0")
    if va == 0.0 || vb == 0.0 {
        return Ok(0.0);
    }
    Ok(cov / (va.sqrt() * vb.sqrt()))
}

/// Linear-interpolated quantile `q ∈ [0, 1]` of `values`.
///
/// Values are ranked with IEEE-754 total order, so NaN inputs sort to the
/// top instead of aborting; callers with possibly-NaN data should filter
/// first.
///
/// # Errors
///
/// Returns [`TimeSeriesError::Empty`] for empty input.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(values: &[f64], q: f64) -> Result<f64, TimeSeriesError> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if values.is_empty() {
        return Err(TimeSeriesError::Empty);
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Mean of the `k` largest values.
///
/// # Errors
///
/// Returns [`TimeSeriesError::Empty`] if `values` is empty or `k == 0`.
pub fn mean_of_top_k(values: &[f64], k: usize) -> Result<f64, TimeSeriesError> {
    if values.is_empty() || k == 0 {
        return Err(TimeSeriesError::Empty);
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let k = k.min(sorted.len());
    Ok(sorted[..k].iter().sum::<f64>() / k as f64)
}

/// Mean of the `k` smallest values.
///
/// # Errors
///
/// Returns [`TimeSeriesError::Empty`] if `values` is empty or `k == 0`.
pub fn mean_of_bottom_k(values: &[f64], k: usize) -> Result<f64, TimeSeriesError> {
    if values.is_empty() || k == 0 {
        return Err(TimeSeriesError::Empty);
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let k = k.min(sorted.len());
    Ok(sorted[..k].iter().sum::<f64>() / k as f64)
}

/// Centered-window rolling mean; the window is truncated at the edges, so
/// the output has the same length as the input.
pub fn rolling_mean(series: &HourlySeries, window: usize) -> HourlySeries {
    let half = window / 2;
    let values = series.values();
    HourlySeries::from_fn(series.start(), values.len(), |i| {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(values.len());
        values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    #[test]
    fn histogram_counts_and_centers() {
        let values = [0.5, 1.5, 1.6, 2.5, 9.9];
        let h = Histogram::new(&values, 0.0, 10.0, 10).unwrap();
        assert_eq!(h.total(), 5);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[2], 1);
        assert_eq!(h.counts()[9], 1);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
        assert!((h.bin_center(9) - 9.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_clamps_outliers() {
        let values = [-5.0, 15.0];
        let h = Histogram::new(&values, 0.0, 10.0, 2).unwrap();
        assert_eq!(h.counts(), &[1, 1]);
    }

    #[test]
    fn histogram_rejects_degenerate_params() {
        assert!(Histogram::new(&[1.0], 0.0, 10.0, 0).is_err());
        assert!(Histogram::new(&[1.0], 5.0, 5.0, 3).is_err());
        assert!(Histogram::from_values(&[], 4).is_err());
    }

    #[test]
    fn histogram_from_values_handles_constant_input() {
        let h = Histogram::from_values(&[2.0, 2.0, 2.0], 4).unwrap();
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn std_dev_known_values() {
        assert_eq!(std_dev(&[1.0]), 0.0);
        let sd = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((sd - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_correlations() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c).unwrap() + 1.0).abs() < 1e-12);
        let flat = [3.0, 3.0, 3.0, 3.0];
        assert_eq!(pearson(&a, &flat).unwrap(), 0.0);
        assert!(pearson(&a, &[1.0]).is_err());
    }

    #[test]
    fn quantile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&v, 1.0).unwrap(), 4.0);
        assert_eq!(quantile(&v, 0.5).unwrap(), 2.5);
        assert!(quantile(&[], 0.5).is_err());
    }

    #[test]
    fn top_and_bottom_k() {
        let v = [5.0, 1.0, 9.0, 3.0];
        assert_eq!(mean_of_top_k(&v, 2).unwrap(), 7.0);
        assert_eq!(mean_of_bottom_k(&v, 2).unwrap(), 2.0);
        // k larger than the slice falls back to the whole slice.
        assert_eq!(mean_of_top_k(&v, 10).unwrap(), 4.5);
        assert!(mean_of_top_k(&v, 0).is_err());
    }

    #[test]
    fn rolling_mean_smooths() {
        let s = HourlySeries::from_values(
            Timestamp::start_of_year(2020),
            vec![0.0, 10.0, 0.0, 10.0, 0.0],
        );
        let r = rolling_mean(&s, 3);
        assert_eq!(r.len(), 5);
        assert_eq!(r[1], 10.0 / 3.0);
        // Edges use truncated windows.
        assert_eq!(r[0], 5.0);
    }

    #[test]
    fn coefficient_of_variation_basics() {
        assert_eq!(coefficient_of_variation(&[]), 0.0);
        assert_eq!(coefficient_of_variation(&[5.0, 5.0]), 0.0);
        assert!(coefficient_of_variation(&[1.0, 9.0]) > 0.5);
    }
}
