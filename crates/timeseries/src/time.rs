//! A minimal proleptic-Gregorian calendar with hourly resolution.
//!
//! Carbon Explorer only ever needs wall-clock arithmetic at hour granularity
//! within a handful of years, so this module implements exactly that: dates,
//! timestamps (date + hour), day-of-year / hour-of-year conversions and leap
//! years. No time zones — all grid data and traces are treated as local
//! standard time, matching the EIA hourly grid monitor convention.

use crate::TimeSeriesError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Hours in a civil day.
pub const HOURS_PER_DAY: usize = 24;

/// Returns `true` if `year` is a Gregorian leap year.
///
/// ```
/// assert!(ce_timeseries::time::is_leap_year(2020));
/// assert!(!ce_timeseries::time::is_leap_year(2100));
/// assert!(ce_timeseries::time::is_leap_year(2000));
/// ```
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in `year` (365 or 366).
pub fn days_in_year(year: i32) -> u32 {
    if is_leap_year(year) {
        366
    } else {
        365
    }
}

/// Number of hours in `year` (8760 or 8784).
pub fn hours_in_year(year: i32) -> usize {
    // ce:allow(cast, reason = "u32 day count widening into usize; every supported target is at least 32-bit")
    days_in_year(year) as usize * HOURS_PER_DAY // ce:allow(arith, reason = "at most 366 * 24 = 8784, far below usize::MAX")
}

/// Number of days in `month` (1-based) of `year`.
///
/// # Panics
///
/// Panics if `month` is not in `1..=12`.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    assert!((1..=12).contains(&month), "month must be 1..=12");
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap_year(year) => 29,
        _ => 28,
    }
}

/// A calendar date (year, month, day).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    year: i32,
    month: u8,
    day: u8,
}

impl Date {
    /// Creates a date, validating the month and day.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::InvalidDate`] if `month` is outside
    /// `1..=12` or `day` is outside the month's range.
    ///
    /// ```
    /// use ce_timeseries::Date;
    /// # fn main() -> Result<(), ce_timeseries::TimeSeriesError> {
    /// let d = Date::new(2020, 2, 29)?;
    /// assert_eq!(d.day_of_year(), 60);
    /// assert!(Date::new(2021, 2, 29).is_err());
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(year: i32, month: u8, day: u8) -> Result<Self, TimeSeriesError> {
        if !(1..=12).contains(&month) {
            return Err(TimeSeriesError::InvalidDate {
                what: "month must be 1..=12",
            });
        }
        if day == 0 || day > days_in_month(year, month) {
            return Err(TimeSeriesError::InvalidDate {
                what: "day out of range for month",
            });
        }
        Ok(Self { year, month, day })
    }

    /// January 1 of `year`.
    pub fn start_of_year(year: i32) -> Self {
        Self {
            year,
            month: 1,
            day: 1,
        }
    }

    /// The year component.
    pub fn year(&self) -> i32 {
        self.year
    }

    /// The month component (1-based).
    pub fn month(&self) -> u8 {
        self.month
    }

    /// The day-of-month component (1-based).
    pub fn day(&self) -> u8 {
        self.day
    }

    /// 1-based ordinal day within the year (Jan 1 = 1, Dec 31 = 365/366).
    pub fn day_of_year(&self) -> u32 {
        let mut doy = 0u32;
        for m in 1..self.month {
            // ce:allow(arith, reason = "at most 11 summed month lengths, total below 366")
            doy += u32::from(days_in_month(self.year, m));
        }
        // ce:allow(arith, reason = "month prefix plus day-of-month stays at or below 366")
        doy + u32::from(self.day)
    }

    /// Builds a date from a 1-based ordinal day of the year.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::InvalidDate`] if `doy` is 0 or exceeds the
    /// number of days in `year`.
    pub fn from_day_of_year(year: i32, doy: u32) -> Result<Self, TimeSeriesError> {
        if doy == 0 || doy > days_in_year(year) {
            return Err(TimeSeriesError::InvalidDate {
                what: "day of year out of range",
            });
        }
        Ok(Self::from_day_of_year_clamped(year, doy))
    }

    /// Infallible companion to [`Date::from_day_of_year`]: walks the
    /// months, clamping out-of-range inputs to Jan 1 / Dec 31 instead of
    /// failing. Callers guarantee `1 <= doy <= days_in_year(year)`.
    fn from_day_of_year_clamped(year: i32, doy: u32) -> Self {
        let mut remaining = doy.max(1);
        let mut month = 1u8;
        while month < 12 {
            let dim = u32::from(days_in_month(year, month));
            if remaining <= dim {
                break;
            }
            remaining -= dim;
            month += 1;
        }
        let dim = u32::from(days_in_month(year, month));
        Self {
            year,
            month,
            day: remaining.min(dim) as u8,
        }
    }

    /// The next calendar day (rolls over month and year boundaries).
    pub fn succ(&self) -> Self {
        if self.day < days_in_month(self.year, self.month) {
            Self {
                // ce:allow(arith, reason = "guarded by the branch: day < days_in_month <= 31")
                day: self.day + 1,
                ..*self
            }
        } else if self.month < 12 {
            Self {
                year: self.year,
                // ce:allow(arith, reason = "guarded by the branch: month < 12")
                month: self.month + 1,
                day: 1,
            }
        } else {
            Self::start_of_year(self.year.saturating_add(1))
        }
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A timestamp with hourly resolution: a [`Date`] plus an hour in `0..=23`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Timestamp {
    date: Date,
    hour: u8,
}

impl Timestamp {
    /// Creates a timestamp, validating all components.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::InvalidDate`] if the date is invalid or
    /// `hour` is not in `0..=23`.
    pub fn new(year: i32, month: u8, day: u8, hour: u8) -> Result<Self, TimeSeriesError> {
        if hour >= 24 {
            return Err(TimeSeriesError::InvalidDate {
                what: "hour must be 0..=23",
            });
        }
        Ok(Self {
            date: Date::new(year, month, day)?,
            hour,
        })
    }

    /// Midnight on January 1 of `year`.
    ///
    /// ```
    /// use ce_timeseries::Timestamp;
    /// let t = Timestamp::start_of_year(2020);
    /// assert_eq!(t.hour_of_year(), 0);
    /// ```
    pub fn start_of_year(year: i32) -> Self {
        Self {
            date: Date::start_of_year(year),
            hour: 0,
        }
    }

    /// The date component.
    pub fn date(&self) -> Date {
        self.date
    }

    /// The hour-of-day component (`0..=23`).
    pub fn hour(&self) -> u8 {
        self.hour
    }

    /// Zero-based hour within the year (`0..hours_in_year(year)`).
    pub fn hour_of_year(&self) -> usize {
        // ce:allow(cast, reason = "u32 day ordinal widening into usize; every supported target is at least 32-bit")
        (self.date.day_of_year() as usize - 1) * HOURS_PER_DAY // ce:allow(arith, reason = "day ordinal is 1..=366, so the zero-based product plus hour tops out at 8783")
            + usize::from(self.hour)
    }

    /// Builds a timestamp from a zero-based hour of the year, rolling into
    /// subsequent years if `hour_of_year` exceeds the year's length.
    pub fn from_hour_of_year(mut year: i32, mut hour_of_year: usize) -> Self {
        while hour_of_year >= hours_in_year(year) {
            hour_of_year -= hours_in_year(year);
            year = year.saturating_add(1);
        }
        // ce:allow(cast, reason = "the loop above normalizes hour_of_year below 8784, so the day ordinal fits u32")
        let doy = (hour_of_year / HOURS_PER_DAY) as u32 + 1; // ce:allow(arith, reason = "a normalized day ordinal is below 366, so the 1-based form fits u32")
                                                             // ce:allow(cast, reason = "a residue modulo 24 always fits u8")
        let hour = (hour_of_year % HOURS_PER_DAY) as u8;
        Self {
            date: Date::from_day_of_year_clamped(year, doy),
            hour,
        }
    }

    /// The timestamp `hours` hours later.
    pub fn plus_hours(&self, hours: usize) -> Self {
        Self::from_hour_of_year(self.date.year(), self.hour_of_year().saturating_add(hours))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:02}:00", self.date, self.hour)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2020));
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(2021));
        assert_eq!(days_in_year(2020), 366);
        assert_eq!(days_in_year(2021), 365);
        assert_eq!(hours_in_year(2020), 8784);
        assert_eq!(hours_in_year(2021), 8760);
    }

    #[test]
    fn month_lengths() {
        assert_eq!(days_in_month(2020, 2), 29);
        assert_eq!(days_in_month(2021, 2), 28);
        assert_eq!(days_in_month(2021, 12), 31);
        assert_eq!(days_in_month(2021, 4), 30);
    }

    #[test]
    #[should_panic(expected = "month must be 1..=12")]
    fn days_in_month_rejects_month_zero() {
        days_in_month(2021, 0);
    }

    #[test]
    fn date_validation() {
        assert!(Date::new(2021, 2, 29).is_err());
        assert!(Date::new(2021, 13, 1).is_err());
        assert!(Date::new(2021, 0, 1).is_err());
        assert!(Date::new(2021, 6, 0).is_err());
        assert!(Date::new(2020, 2, 29).is_ok());
    }

    #[test]
    fn day_of_year_roundtrip_whole_year() {
        for year in [2020, 2021] {
            for doy in 1..=days_in_year(year) {
                let date = Date::from_day_of_year(year, doy).unwrap();
                assert_eq!(date.day_of_year(), doy);
            }
        }
    }

    #[test]
    fn date_succ_rolls_over() {
        let d = Date::new(2020, 12, 31).unwrap();
        assert_eq!(d.succ(), Date::start_of_year(2021));
        let d = Date::new(2020, 2, 29).unwrap();
        assert_eq!(d.succ(), Date::new(2020, 3, 1).unwrap());
        let d = Date::new(2020, 1, 15).unwrap();
        assert_eq!(d.succ(), Date::new(2020, 1, 16).unwrap());
    }

    #[test]
    fn hour_of_year_roundtrip() {
        for year in [2020, 2021] {
            for hoy in (0..hours_in_year(year)).step_by(7) {
                let ts = Timestamp::from_hour_of_year(year, hoy);
                assert_eq!(ts.hour_of_year(), hoy);
            }
        }
    }

    #[test]
    fn from_hour_of_year_rolls_into_next_year() {
        let ts = Timestamp::from_hour_of_year(2020, hours_in_year(2020) + 5);
        assert_eq!(ts.date().year(), 2021);
        assert_eq!(ts.hour_of_year(), 5);
    }

    #[test]
    fn plus_hours_advances() {
        let ts = Timestamp::new(2020, 12, 31, 23).unwrap();
        let next = ts.plus_hours(1);
        assert_eq!(next, Timestamp::start_of_year(2021));
        assert_eq!(ts.plus_hours(0), ts);
    }

    #[test]
    fn timestamp_rejects_bad_hour() {
        assert!(Timestamp::new(2020, 1, 1, 24).is_err());
        assert!(Timestamp::new(2020, 1, 1, 23).is_ok());
    }

    #[test]
    fn display_formats() {
        let ts = Timestamp::new(2020, 3, 7, 5).unwrap();
        assert_eq!(ts.to_string(), "2020-03-07 05:00");
        assert_eq!(ts.date().to_string(), "2020-03-07");
    }

    #[test]
    fn ordering_follows_time() {
        let a = Timestamp::new(2020, 1, 1, 5).unwrap();
        let b = Timestamp::new(2020, 1, 2, 0).unwrap();
        assert!(a < b);
    }
}
