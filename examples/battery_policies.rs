//! Battery dispatch policies: greedy vs carbon-threshold vs peak-shaving.
//!
//! The same battery, dispatched three ways over the same Utah year:
//! the greedy policy maximizes renewable utilization (the paper's
//! default), the threshold policy holds energy back for the dirtiest
//! hours, and the peak-shaving policy reproduces today's UPS economics.
//!
//! Run with: `cargo run --release --example battery_policies`

use carbon_explorer::battery::{
    dispatch_with_policy, DispatchPolicy, GreedyPolicy, PeakShavingPolicy, ThresholdPolicy,
};
use carbon_explorer::prelude::*;

fn main() {
    let fleet = Fleet::meta_us();
    let site = fleet.site("UT").expect("UT is in Table 1").clone();
    let grid = GridDataset::synthesize(site.ba(), 2020, 7);
    let demand = site.demand_trace(2020, 7);
    // Use a tighter supply so the battery has real work to do.
    let supply = grid.scaled_renewables(0.4 * site.solar_mw(), 0.4 * site.wind_mw());
    let intensity = grid.carbon_intensity();
    let capacity = 5.0 * site.avg_power_mw();

    // Hold stored energy back for the dirtiest quartile of hours.
    let dirty_threshold = carbon_explorer::timeseries::stats::quantile(intensity.values(), 0.75)
        .expect("non-empty intensity");
    let policies: Vec<(&str, Box<dyn DispatchPolicy>)> = vec![
        ("greedy (paper default)", Box::new(GreedyPolicy)),
        (
            "carbon threshold",
            Box::new(ThresholdPolicy {
                threshold_t_per_mwh: dirty_threshold,
            }),
        ),
        (
            "peak shaving",
            Box::new(PeakShavingPolicy {
                cap_mw: 0.5 * demand.max().expect("non-empty"),
            }),
        ),
    ];

    println!(
        "{:<24}{:>16}{:>16}{:>14}{:>10}",
        "policy", "grid MWh", "op tCO2", "peak grid MW", "cycles"
    );
    for (name, policy) in &policies {
        let mut battery = ClcBattery::lfp(capacity, 1.0);
        let result =
            dispatch_with_policy(&mut battery, policy.as_ref(), &demand, &supply, &intensity)
                .expect("aligned series");
        println!(
            "{name:<24}{:>16.0}{:>16.0}{:>14.1}{:>10.0}",
            result.grid_draw.sum(),
            result.operational_tons,
            result.peak_grid_draw_mw,
            result.equivalent_cycles
        );
    }
    println!(
        "\nRenewable deficits coincide with the grid's dirtiest hours, so the greedy and\nthreshold dispatches agree here — stored energy is already being spent where it\nmatters. Peak shaving minimizes the demand charge instead, at 4.5x the carbon."
    );
}
