//! Battery sizing: how many hours of storage buy how much coverage?
//!
//! Sweeps battery capacity for the Utah datacenter at Meta's existing
//! renewable investment, comparing the physically accurate C/L/C LFP model
//! against an ideal (lossless) battery, and reports the depth-of-discharge
//! trade-off from §5.2.
//!
//! Run with: `cargo run --release --example battery_sizing`

use carbon_explorer::battery::simulate_dispatch;
use carbon_explorer::core::Coverage;
use carbon_explorer::prelude::*;

fn main() {
    let fleet = Fleet::meta_us();
    let site = fleet.site("UT").expect("UT is in Table 1").clone();
    let grid = GridDataset::synthesize(site.ba(), 2020, 7);
    let demand = site.demand_trace(2020, 7);
    let supply = grid.scaled_renewables(site.solar_mw(), site.wind_mw());
    let avg = site.avg_power_mw();

    println!("battery capacity sweep, Utah DC at Meta's renewable investment:\n");
    println!(
        "{:>8}{:>12}{:>14}{:>14}{:>12}",
        "hours", "MWh", "LFP coverage", "ideal cover", "LFP cycles"
    );
    for hours in [0.0, 1.0, 2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0] {
        let capacity = hours * avg;
        let mut lfp = ClcBattery::lfp(capacity, 1.0);
        let lfp_result = simulate_dispatch(&mut lfp, &demand, &supply).expect("aligned");
        let lfp_cov = Coverage::from_unmet(&demand, &lfp_result.unmet).expect("aligned");

        let mut ideal = IdealBattery::new(capacity);
        let ideal_result = simulate_dispatch(&mut ideal, &demand, &supply).expect("aligned");
        let ideal_cov = Coverage::from_unmet(&demand, &ideal_result.unmet).expect("aligned");

        println!(
            "{hours:>8.0}{capacity:>12.0}{:>13.2}%{:>13.2}%{:>12.0}",
            lfp_cov.percent(),
            ideal_cov.percent(),
            lfp_result.equivalent_cycles,
        );
    }

    println!("\ndepth-of-discharge trade-off at 6 hours of battery:");
    for dod in [1.0, 0.8, 0.6] {
        let capacity = 6.0 * avg;
        let mut battery = ClcBattery::lfp(capacity, dod);
        let result = simulate_dispatch(&mut battery, &demand, &supply).expect("aligned");
        let coverage = Coverage::from_unmet(&demand, &result.unmet).expect("aligned");
        let embodied = EmbodiedParams::paper_defaults()
            .battery
            .amortized_tons_per_year(capacity, dod, result.equivalent_cycles);
        println!(
            "  DoD {:>3.0}%: coverage {:.2}%, usable {:.0} MWh, cycle life {:.0}, embodied {:.0} tCO2/year",
            dod * 100.0,
            coverage.percent(),
            capacity * dod,
            carbon_explorer::battery::cycle_life(dod),
            embodied,
        );
    }
}
