//! Carbon-aware scheduling: shifting flexible work into clean hours.
//!
//! Reproduces the flavor of the paper's Figure 11 on one week of the Utah
//! datacenter: the greedy scheduler moves the flexible share of each
//! hour's load away from carbon-intensive hours, subject to a capacity
//! cap, and is compared against the LP-optimal placement from `ce-lp`.
//!
//! Run with: `cargo run --release --example carbon_aware_scheduling`

use carbon_explorer::prelude::*;
use carbon_explorer::scheduler::lp_schedule;

fn main() {
    let fleet = Fleet::meta_us();
    let site = fleet.site("UT").expect("UT is in Table 1").clone();
    let grid = GridDataset::synthesize(site.ba(), 2020, 7);
    let demand = site
        .demand_trace(2020, 7)
        .window(100 * 24, 7 * 24)
        .expect("window fits in the year");
    let supply = grid
        .scaled_renewables(site.solar_mw(), site.wind_mw())
        .window(100 * 24, 7 * 24)
        .expect("window fits in the year");

    let deficit = |d: &HourlySeries| {
        d.zip_with(&supply, |p, s| (p - s).max(0.0))
            .expect("aligned")
            .sum()
    };

    println!("one week of the Utah DC, 40% flexible workloads:\n");
    println!(
        "unscheduled renewable deficit: {:>8.1} MWh",
        deficit(&demand)
    );

    let config = CasConfig {
        max_capacity_mw: demand.max().expect("non-empty") * 1.4,
        flexible_ratio: 0.4,
    };

    let greedy = GreedyScheduler::new(config)
        .schedule(&demand, &supply)
        .expect("aligned");
    println!(
        "after greedy CAS:              {:>8.1} MWh ({:.1} MWh shifted)",
        deficit(&greedy.shifted_demand),
        greedy.energy_shifted_mwh
    );

    let optimal = lp_schedule(&demand, &supply, config).expect("solvable day LPs");
    println!(
        "after LP-optimal placement:    {:>8.1} MWh",
        deficit(&optimal)
    );

    let gap = (deficit(&greedy.shifted_demand) - deficit(&optimal)) / deficit(&optimal).max(1e-9);
    println!(
        "\nthe paper's greedy algorithm is within {:.1}% of the LP optimum here",
        gap * 100.0
    );

    // How many extra servers would full 24/7 coverage need this week?
    match carbon_explorer::scheduler::required_capacity_for_full_coverage(&demand, &supply, 1.0)
        .expect("aligned")
    {
        Some(cap) => {
            let peak = demand.max().expect("non-empty");
            println!(
                "fully flexible workloads could reach 24/7 with {:.0}% extra capacity",
                ((cap - peak) / peak).max(0.0) * 100.0
            );
        }
        None => println!("scheduling alone cannot reach 24/7 this week (supply is short)"),
    }
}
