//! Geographic load migration across the fleet.
//!
//! Temporal scheduling moves work to a different *hour*; spatial
//! migration moves it to a different *region* whose renewables are live
//! right now. This example balances flexible load across five Meta sites
//! with complementary resources and measures the fleet-wide deficit
//! reduction, then stacks temporal scheduling on top.
//!
//! Run with: `cargo run --release --example fleet_migration`

use carbon_explorer::prelude::*;
use carbon_explorer::scheduler::{migrate_load, MigrationConfig, SpatialSite};

fn main() {
    let fleet = Fleet::meta_us();
    let states = ["OR", "TX", "NC", "IA", "NM"];
    let mut sites = Vec::new();
    for state in states {
        let site = fleet.site(state).expect("in Table 1").clone();
        let grid = GridDataset::synthesize(site.ba(), 2020, 7);
        let demand = site.demand_trace(2020, 7);
        let supply = grid.scaled_renewables(site.solar_mw(), site.wind_mw());
        sites.push(SpatialSite {
            name: format!("{state} ({})", site.ba()),
            max_capacity_mw: demand.max().expect("non-empty") * 1.5,
            demand,
            supply,
        });
    }

    println!("fleet of {}: {}\n", sites.len(), states.join(", "));
    for fraction in [0.0, 0.2, 0.4, 0.8] {
        let result = migrate_load(
            &sites,
            MigrationConfig {
                migratable_fraction: fraction,
                migration_overhead: 0.02,
            },
        )
        .expect("aligned fleets");
        println!(
            "migratable {:>3.0}%: fleet deficit {:>9.0} MWh ({:>5.1}% below baseline), moved {:>8.0} MWh",
            fraction * 100.0,
            result.deficit_after_mwh,
            (1.0 - result.deficit_after_mwh / result.deficit_before_mwh.max(1e-9)) * 100.0,
            result.migrated_mwh
        );
    }

    // Stack temporal CAS on top of 40% spatial migration.
    let migrated = migrate_load(&sites, MigrationConfig::default()).expect("aligned fleets");
    let mut residual_after_both = 0.0;
    for (balanced, site) in migrated.balanced_demand.iter().zip(&sites) {
        let scheduler = GreedyScheduler::new(CasConfig {
            max_capacity_mw: site.max_capacity_mw,
            flexible_ratio: 0.4,
        });
        let scheduled = scheduler
            .schedule(balanced, &site.supply)
            .expect("aligned series");
        residual_after_both += scheduled
            .shifted_demand
            .zip_with(&site.supply, |d, s| (d - s).max(0.0))
            .expect("aligned series")
            .sum();
    }
    println!(
        "\nspatial (40%) + temporal CAS (40%): fleet deficit {:.0} MWh — the two levers compose.",
        residual_after_both
    );
}
