//! Net Zero vs 24/7: the accounting granularity gap.
//!
//! A datacenter whose annual renewable credits exceed its consumption is
//! "Net Zero" — but tighten the matching period from a year to a month, a
//! day, an hour, and the matched share falls while the real residual
//! emissions surface. This is the observation that motivates the entire
//! paper.
//!
//! Run with: `cargo run --release --example matching_granularity`

use carbon_explorer::core::accounting::{match_credits, MatchingGranularity};
use carbon_explorer::prelude::*;

fn main() {
    let fleet = Fleet::meta_us();
    println!(
        "{:<6}{:>10}{:>10}{:>10}{:>10}{:>14}",
        "site", "annual", "monthly", "daily", "hourly", "hourly tCO2"
    );
    for state in ["UT", "OR", "NC", "TX", "IA"] {
        let site = fleet.site(state).expect("in Table 1").clone();
        let grid = GridDataset::synthesize(site.ba(), 2020, 7);
        let demand = site.demand_trace(2020, 7);
        let supply = grid.scaled_renewables(site.solar_mw(), site.wind_mw());
        let intensity = grid.carbon_intensity();

        let fraction = |g: MatchingGranularity| {
            match_credits(&demand, &supply, &intensity, g)
                .expect("aligned series")
                .matched_fraction()
                * 100.0
        };
        let hourly = match_credits(&demand, &supply, &intensity, MatchingGranularity::Hourly)
            .expect("aligned series");
        println!(
            "{state:<6}{:>9.1}%{:>9.1}%{:>9.1}%{:>9.1}%{:>14.0}",
            fraction(MatchingGranularity::Annual),
            fraction(MatchingGranularity::Monthly),
            fraction(MatchingGranularity::Daily),
            fraction(MatchingGranularity::Hourly),
            hourly.residual_emissions_tons,
        );
    }
    println!(
        "\nAnnual credits hide hourly deficits; the residual column is the carbon a\n\"Net Zero\" datacenter still emits — what batteries and scheduling must eliminate."
    );
}
