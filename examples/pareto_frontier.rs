//! Pareto analysis: the operational-vs-embodied carbon trade-off.
//!
//! Explores the full design space for the Oregon datacenter (the paper's
//! hardest region — wind-heavy with deep supply valleys) under all four
//! strategies, extracts the Pareto frontier, and shows why 100% 24/7
//! coverage is not always carbon-optimal.
//!
//! Run with: `cargo run --release --example pareto_frontier`

use carbon_explorer::prelude::*;

fn main() {
    let fleet = Fleet::meta_us();
    let site = fleet.site("OR").expect("OR is in Table 1").clone();
    let grid = GridDataset::synthesize(site.ba(), 2020, 7);
    let explorer = CarbonExplorer::new(site.demand_trace(2020, 7), grid);
    let avg = site.avg_power_mw();

    let space = DesignSpace {
        solar: (0.0, 30.0 * avg, 6),
        wind: (0.0, 30.0 * avg, 6),
        battery: (0.0, 24.0 * avg, 5),
        extra_capacity: (0.0, 1.0, 3),
    };

    println!(
        "Oregon DC ({} MW average) — Pareto frontiers per strategy:\n",
        avg
    );
    for strategy in StrategyKind::ALL {
        let evals = explorer.explore(strategy, &space);
        let frontier = ParetoFrontier::from_evaluations(&evals);
        println!("{strategy}:");
        for point in frontier.points().iter().take(6) {
            println!(
                "  embodied {:>8.0} t/y   operational {:>8.0} t/y   coverage {:>5.1}%",
                point.embodied_tons(),
                point.operational_tons,
                point.coverage.percent()
            );
        }
        let optimal = frontier.carbon_optimal().expect("non-empty frontier");
        println!(
            "  → carbon-optimal: {:.0} t/y total at {:.1}% coverage ({})\n",
            optimal.total_tons(),
            optimal.coverage.percent(),
            optimal.design
        );
    }

    // The paper's headline: chasing the last percent of coverage costs
    // more embodied carbon than it saves operationally.
    let all = explorer.explore(StrategyKind::RenewablesBatteryCas, &space);
    let frontier = ParetoFrontier::from_evaluations(&all);
    if let (Some(best), Some(full)) = (frontier.carbon_optimal(), frontier.cheapest_full_coverage())
    {
        println!(
            "cheapest 100% 24/7 design emits {:.0} t/y vs {:.0} t/y at the {:.1}%-coverage optimum:",
            full.total_tons(),
            best.total_tons(),
            best.coverage.percent()
        );
        println!("full 24/7 coverage is not carbon-optimal in Oregon — the paper's key insight.");
    } else {
        println!("no design in this grid reaches full 24/7 coverage for Oregon —");
        println!("exactly the long tail the paper describes for wind-heavy regions.");
    }
}
