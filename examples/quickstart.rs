//! Quickstart: how much of a datacenter's power can renewables cover?
//!
//! Synthesizes a year of grid data for Meta's Utah datacenter, asks what
//! hourly coverage the existing investments achieve, and then what one
//! battery and carbon-aware scheduling add on top.
//!
//! Run with: `cargo run --release --example quickstart`

use carbon_explorer::prelude::*;

fn main() {
    // 1. Inputs: a site from Table 1, a synthetic grid year, a demand trace.
    let fleet = Fleet::meta_us();
    let site = fleet.site("UT").expect("UT is in Table 1").clone();
    let grid = GridDataset::synthesize(site.ba(), 2020, 7);
    let demand = site.demand_trace(2020, 7);
    println!("site: {site}");

    // 2. Renewables only: scale the grid's wind/solar shapes to Meta's
    //    investment and compute the paper's coverage metric.
    let supply = grid.scaled_renewables(site.solar_mw(), site.wind_mw());
    let coverage = renewable_coverage(&demand, &supply).expect("aligned series");
    println!("renewables only:      {coverage}");

    // 3. Add a battery sized for ~5 hours of compute.
    let mut battery = ClcBattery::lfp(5.0 * site.avg_power_mw(), 1.0);
    let dispatch = carbon_explorer::battery::simulate_dispatch(&mut battery, &demand, &supply)
        .expect("aligned series");
    let with_battery = carbon_explorer::core::Coverage::from_unmet(&demand, &dispatch.unmet)
        .expect("aligned series");
    println!("with 5h battery:      {with_battery}");

    // 4. Add carbon-aware scheduling (40% flexible workloads) on top.
    let mut battery = ClcBattery::lfp(5.0 * site.avg_power_mw(), 1.0);
    let combined = carbon_explorer::scheduler::combined_dispatch(
        &mut battery,
        &demand,
        &supply,
        CombinedConfig {
            max_capacity_mw: demand.max().expect("non-empty") * 1.5,
            flexible_ratio: 0.4,
            window_hours: 24,
        },
    )
    .expect("aligned series");
    let with_both = carbon_explorer::core::Coverage::from_unmet(&demand, &combined.unmet)
        .expect("aligned series");
    println!("with battery + CAS:   {with_both}");
    println!(
        "battery cycles: {:.0}/year, energy shifted: {:.0} MWh/year",
        combined.equivalent_cycles, combined.deferred_mwh
    );
}
