//! Boot the `ce-serve` query service on a free port, evaluate one design
//! over real HTTP, and read the service's own metrics — everything a
//! deployment does, in one file.
//!
//! Run with: `cargo run --example serve_quickstart`

use carbon_explorer::serve::{start, Json, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Minimal HTTP/1.1 client: one request, `connection: close`, returns
/// `(status_line, body)`.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to ce-serve");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nhost: example\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("complete response");
    let status_line = head.lines().next().unwrap_or("").to_string();
    (status_line, body.to_string())
}

fn main() {
    // Port 0 picks a free port; `handle.addr()` reports the real one.
    let handle = start(ServerConfig::default()).expect("bind ce-serve");
    let addr = handle.addr();
    println!("ce-serve listening on http://{addr}");

    // Liveness first — this endpoint never queues behind compute.
    let (status, body) = http(addr, "GET", "/healthz", "");
    println!("healthz: {status} {body}");

    // Evaluate one candidate design for Meta's Utah site: 150 MW solar,
    // 100 MW wind, a 40 MWh battery, with carbon-aware scheduling.
    let (status, body) = http(
        addr,
        "POST",
        "/evaluate",
        r#"{"site":"UT","strategy":"renewables_battery_cas",
            "design":{"solar_mw":150,"wind_mw":100,"battery_mwh":40}}"#,
    );
    assert!(status.contains("200"), "{status}: {body}");
    let evaluation = Json::parse(&body).expect("response JSON");
    println!(
        "UT design: renewable coverage {:.1}%, total carbon {:.0} tons",
        100.0
            * evaluation
                .get("coverage_fraction")
                .and_then(Json::as_f64)
                .unwrap_or(f64::NAN),
        evaluation
            .get("total_tons")
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN),
    );

    // The same request again is a response-cache hit: byte-identical body,
    // microsecond latency.
    let (_, replay) = http(
        addr,
        "POST",
        "/evaluate",
        r#"{"site":"UT","strategy":"renewables_battery_cas",
            "design":{"solar_mw":150,"wind_mw":100,"battery_mwh":40}}"#,
    );
    assert_eq!(replay, body, "cache replays are bitwise-identical");

    // Sweep a small solar × wind grid and report the lowest-carbon point.
    let (status, body) = http(
        addr,
        "POST",
        "/explore",
        r#"{"site":"UT","strategy":"renewables_only",
            "space":{"solar":[0,300,4],"wind":[0,300,4]}}"#,
    );
    assert!(status.contains("200"), "{status}: {body}");
    let sweep = Json::parse(&body).expect("sweep JSON");
    let results = sweep
        .get("results")
        .and_then(Json::as_array)
        .expect("results array");
    let best = results
        .iter()
        .min_by(|a, b| {
            let tons = |e: &Json| {
                e.get("total_tons")
                    .and_then(Json::as_f64)
                    .unwrap_or(f64::INFINITY)
            };
            tons(a).total_cmp(&tons(b))
        })
        .expect("non-empty sweep");
    println!(
        "swept {} designs; best: {} MW solar, {} MW wind → {:.0} tons",
        results.len(),
        best.get("design")
            .and_then(|d| d.get("solar_mw"))
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN),
        best.get("design")
            .and_then(|d| d.get("wind_mw"))
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN),
        best.get("total_tons")
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN),
    );

    // `/stats` shows what the service did.
    let (_, stats_body) = http(addr, "GET", "/stats", "");
    let stats = Json::parse(&stats_body).expect("stats JSON");
    let evaluate = stats
        .get("endpoints")
        .and_then(|e| e.get("evaluate"))
        .expect("evaluate stats");
    println!(
        "served {} /evaluate requests ({} computed, {} cache hits)",
        evaluate
            .get("requests")
            .and_then(Json::as_f64)
            .unwrap_or(0.0),
        evaluate
            .get("computed")
            .and_then(Json::as_f64)
            .unwrap_or(0.0),
        evaluate
            .get("cache_hits")
            .and_then(Json::as_f64)
            .unwrap_or(0.0),
    );

    // Graceful shutdown drains in-flight work before returning.
    handle.shutdown();
    println!("server drained and stopped");
}
