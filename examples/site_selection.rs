//! Site selection: which regions make the cheapest carbon-aware
//! datacenters?
//!
//! For every Table 1 site, finds the carbon-optimal renewables + battery +
//! CAS configuration and ranks regions by total carbon per MW of capacity
//! — the paper's site-selection finding (§5.2: Nebraska, Utah, and Texas
//! stand out; solar-only regions struggle).
//!
//! Run with: `cargo run --release --example site_selection`

use carbon_explorer::prelude::*;

fn main() {
    let fleet = Fleet::meta_us();
    let mut ranking: Vec<(String, String, f64, f64)> = Vec::new();

    for site in &fleet {
        let grid = GridDataset::synthesize(site.ba(), 2020, 7);
        let explorer = CarbonExplorer::new(site.demand_trace(2020, 7), grid);
        let avg = site.avg_power_mw();
        let space = DesignSpace {
            solar: (0.0, 30.0 * avg, 5),
            wind: (0.0, 30.0 * avg, 5),
            battery: (0.0, 24.0 * avg, 4),
            extra_capacity: (0.0, 1.0, 2),
        };
        let best = explorer
            .optimal_refined(StrategyKind::RenewablesBatteryCas, &space, 1)
            .expect("space is non-empty");
        ranking.push((
            site.state().to_string(),
            site.ba().regime().to_string(),
            best.total_tons() / avg,
            best.coverage.percent(),
        ));
    }

    ranking.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite totals"));
    println!("carbon-optimal total footprint per MW of DC capacity (best site first):\n");
    println!(
        "{:<6}{:<16}{:>14}{:>12}",
        "site", "regime", "tCO2/MW/year", "coverage"
    );
    for (state, regime, per_mw, coverage) in &ranking {
        println!("{state:<6}{regime:<16}{per_mw:>14.0}{coverage:>11.1}%");
    }

    let best = &ranking[0];
    let worst = &ranking[ranking.len() - 1];
    println!(
        "\n{} is {:.1}x cheaper (in carbon) than {} — site selection matters.",
        best.0,
        worst.2 / best.2,
        worst.0
    );
}
