//! # Carbon Explorer
//!
//! A holistic framework for designing carbon-aware datacenters — a Rust
//! reproduction of *Carbon Explorer* (Acun et al., ASPLOS 2023).
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! - [`timeseries`] — hourly time-series substrate,
//! - [`lp`] — dense simplex LP solver,
//! - [`grid`] — power-grid synthesis (solar, wind, fuel mixes, curtailment),
//! - [`datacenter`] — datacenter sites, utilization, power, workloads,
//! - [`battery`] — C/L/C lithium-ion battery model and dispatch,
//! - [`scheduler`] — carbon-aware workload scheduling,
//! - [`embodied`] — embodied-carbon models,
//! - [`core`] — coverage, scenarios, design-space exploration, Pareto
//!   analysis (the paper's contribution),
//! - [`parallel`] — the deterministic fork-join primitives behind the
//!   parallel sweep engine (`CE_THREADS` controls the worker count),
//! - [`serve`] — a dependency-free HTTP query service over the engine
//!   (bounded worker pool, scenario caching, request coalescing),
//! - [`manifest`] — provenance manifests: streaming SHA-256, canonical
//!   serialization, and content-addressed, verifiable lineage records.
//!
//! # Quickstart
//!
//! ```
//! use carbon_explorer::prelude::*;
//!
//! // Synthesize a year of grid data and a datacenter demand trace, then ask
//! // what renewable coverage Meta's Utah investments achieve.
//! let grid = GridDataset::synthesize(BalancingAuthority::PACE, 2020, 7);
//! let site = Fleet::meta_us().site("UT").expect("UT site exists").clone();
//! let demand = site.demand_trace(2020, 7);
//! let supply = grid.scaled_renewables(site.solar_mw(), site.wind_mw());
//! let coverage = renewable_coverage(&demand, &supply).expect("aligned series");
//! assert!(coverage.fraction() > 0.0 && coverage.fraction() <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ce_battery as battery;
pub use ce_core as core;
pub use ce_datacenter as datacenter;
pub use ce_embodied as embodied;
pub use ce_grid as grid;
pub use ce_lp as lp;
pub use ce_manifest as manifest;
pub use ce_parallel as parallel;
pub use ce_scheduler as scheduler;
pub use ce_serve as serve;
pub use ce_timeseries as timeseries;

/// Convenient glob-import surface covering the most common types.
pub mod prelude {
    pub use ce_battery::{BatteryModel, ClcBattery, ClcParams, DispatchResult, IdealBattery};
    pub use ce_core::{
        match_credits, renewable_coverage, CarbonExplorer, Coverage, DesignPoint, DesignSpace,
        EvaluatedDesign, MatchingGranularity, ParetoFrontier, Scenario, StrategyKind,
    };
    pub use ce_datacenter::{DataCenterSite, Fleet, PowerModel, UtilizationModel, WorkloadMix};
    pub use ce_embodied::EmbodiedParams;
    pub use ce_grid::{BalancingAuthority, FuelType, GridDataset, PriceModel};
    pub use ce_scheduler::{CasConfig, CombinedConfig, GreedyScheduler, TieredScheduler};
    pub use ce_timeseries::{HourlySeries, Timestamp};
}
