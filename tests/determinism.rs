//! Reproducibility: every stochastic model in the workspace must be a pure
//! function of its seed, because the committed EXPERIMENTS.md numbers are
//! promised to be bit-for-bit reproducible.

use carbon_explorer::datacenter::jobs::JobTraceGenerator;
use carbon_explorer::prelude::*;

#[test]
fn grid_synthesis_is_seed_deterministic() {
    for ba in BalancingAuthority::ALL {
        let a = GridDataset::synthesize(ba, 2020, 7);
        let b = GridDataset::synthesize(ba, 2020, 7);
        assert_eq!(a, b, "{ba} not deterministic");
        assert_ne!(a, GridDataset::synthesize(ba, 2020, 8), "{ba} ignores seed");
    }
}

#[test]
fn different_bas_produce_different_years() {
    // Seed-stream separation: the same seed must not alias across BAs.
    let pace = GridDataset::synthesize(BalancingAuthority::PACE, 2020, 7);
    let erco = GridDataset::synthesize(BalancingAuthority::ERCO, 2020, 7);
    assert_ne!(pace.wind().values(), erco.wind().values());
}

#[test]
fn demand_traces_are_seed_deterministic_and_site_separated() {
    let fleet = Fleet::meta_us();
    let ut = fleet.site("UT").unwrap();
    assert_eq!(ut.demand_trace(2020, 7), ut.demand_trace(2020, 7));
    // Same seed, different sites → different traces (stream separation).
    let or = fleet.site("OR").unwrap();
    let ut_normalized = ut.demand_trace(2020, 7).scale(1.0 / ut.avg_power_mw());
    let or_normalized = or.demand_trace(2020, 7).scale(1.0 / or.avg_power_mw());
    assert_ne!(ut_normalized, or_normalized);
}

#[test]
fn job_populations_are_seed_deterministic() {
    let generator = JobTraceGenerator::default();
    assert_eq!(generator.generate(2020, 1), generator.generate(2020, 1));
    assert_ne!(generator.generate(2020, 1), generator.generate(2020, 2));
}

#[test]
fn full_evaluation_pipeline_is_deterministic() {
    let evaluate = || {
        let site = Fleet::meta_us().site("UT").unwrap().clone();
        let grid = GridDataset::synthesize(site.ba(), 2020, 7);
        let explorer = CarbonExplorer::new(site.demand_trace(2020, 7), grid);
        let design = DesignPoint {
            solar_mw: 200.0,
            wind_mw: 100.0,
            battery_mwh: 80.0,
            extra_capacity_fraction: 0.2,
        };
        explorer.evaluate(StrategyKind::RenewablesBatteryCas, &design)
    };
    let a = evaluate();
    let b = evaluate();
    assert_eq!(a.coverage, b.coverage);
    assert_eq!(a.operational_tons, b.operational_tons);
    assert_eq!(a.embodied_renewables_tons, b.embodied_renewables_tons);
    assert_eq!(a.battery_cycles, b.battery_cycles);
}

#[test]
fn leap_year_lengths_flow_through_the_stack() {
    // 2020 is a leap year (8784 h); 2021 is not (8760 h). Every layer must
    // agree or alignment checks would reject mixed inputs.
    let site = Fleet::meta_us().site("TX").unwrap().clone();
    for (year, hours) in [(2020, 8784), (2021, 8760)] {
        let grid = GridDataset::synthesize(site.ba(), year, 7);
        let demand = site.demand_trace(year, 7);
        assert_eq!(grid.wind().len(), hours);
        assert_eq!(demand.len(), hours);
        // And they compose without alignment errors.
        let supply = grid.scaled_renewables(site.solar_mw(), site.wind_mw());
        assert!(renewable_coverage(&demand, &supply).is_ok());
    }
}
