//! End-to-end integration: the full pipeline from synthesis to optimal
//! design, spanning every crate in the workspace.

use carbon_explorer::battery::simulate_dispatch;
use carbon_explorer::core::Coverage;
use carbon_explorer::prelude::*;

fn explorer_for(state: &str) -> (DataCenterSite, CarbonExplorer) {
    let fleet = Fleet::meta_us();
    let site = fleet.site(state).expect("site in Table 1").clone();
    let grid = GridDataset::synthesize(site.ba(), 2020, 7);
    let explorer = CarbonExplorer::new(site.demand_trace(2020, 7), grid);
    (site, explorer)
}

fn small_space(avg: f64) -> DesignSpace {
    DesignSpace {
        solar: (0.0, 20.0 * avg, 3),
        wind: (0.0, 20.0 * avg, 3),
        battery: (0.0, 12.0 * avg, 3),
        extra_capacity: (0.0, 0.5, 2),
    }
}

#[test]
fn strategies_are_ordered_by_capability() {
    // At a fixed design, each added mechanism may only improve coverage.
    let (site, explorer) = explorer_for("UT");
    let design = DesignPoint {
        solar_mw: site.solar_mw(),
        wind_mw: site.wind_mw(),
        battery_mwh: 4.0 * site.avg_power_mw(),
        extra_capacity_fraction: 0.3,
    };
    let base = explorer.evaluate(StrategyKind::RenewablesOnly, &design);
    let battery = explorer.evaluate(StrategyKind::RenewablesBattery, &design);
    let cas = explorer.evaluate(StrategyKind::RenewablesCas, &design);
    let both = explorer.evaluate(StrategyKind::RenewablesBatteryCas, &design);

    assert!(battery.coverage.fraction() >= base.coverage.fraction());
    assert!(cas.coverage.fraction() >= base.coverage.fraction());
    assert!(both.coverage.fraction() >= battery.coverage.fraction() - 1e-9);
    assert!(both.coverage.fraction() >= cas.coverage.fraction() - 1e-9);
}

#[test]
fn optimal_total_carbon_never_increases_with_more_options() {
    // A strategy superset can always fall back to the subset's design, so
    // its optimum is at least as good.
    let (site, explorer) = explorer_for("TX");
    let space = small_space(site.avg_power_mw());
    let only = explorer
        .optimal(StrategyKind::RenewablesOnly, &space)
        .expect("non-empty");
    let battery = explorer
        .optimal(StrategyKind::RenewablesBattery, &space)
        .expect("non-empty");
    let both = explorer
        .optimal(StrategyKind::RenewablesBatteryCas, &space)
        .expect("non-empty");
    assert!(battery.total_tons() <= only.total_tons() + 1e-6);
    assert!(both.total_tons() <= battery.total_tons() + 1e-6);
}

#[test]
fn pareto_frontier_is_consistent_with_the_sweep() {
    let (site, explorer) = explorer_for("NC");
    let space = small_space(site.avg_power_mw());
    let evals = explorer.explore(StrategyKind::RenewablesBattery, &space);
    let frontier = ParetoFrontier::from_evaluations(&evals);
    assert!(!frontier.is_empty());
    // No evaluated point may dominate a frontier point.
    for f in frontier.points() {
        for e in &evals {
            let dominates = e.embodied_tons() < f.embodied_tons() - 1e-9
                && e.operational_tons < f.operational_tons - 1e-9;
            assert!(!dominates, "frontier point dominated");
        }
    }
    // The frontier's carbon optimum equals the sweep's optimum.
    let sweep_best = evals
        .iter()
        .map(|e| e.total_tons())
        .fold(f64::INFINITY, f64::min);
    let frontier_best = frontier.carbon_optimal().expect("non-empty").total_tons();
    assert!((sweep_best - frontier_best).abs() < 1e-6);
}

#[test]
fn solar_only_region_needs_storage_for_high_coverage() {
    // DUK has no wind: renewables alone cap near 50-60%, batteries break
    // the ceiling — the paper's central claim for NC/GA/TN/AL.
    let (site, explorer) = explorer_for("NC");
    let huge_solar = DesignPoint::renewables(100.0 * site.avg_power_mw(), 0.0);
    let capped = explorer.evaluate(StrategyKind::RenewablesOnly, &huge_solar);
    assert!(
        capped.coverage.fraction() < 0.65,
        "solar-only coverage {} should cap near 50-60%",
        capped.coverage
    );

    let with_battery = DesignPoint {
        battery_mwh: 16.0 * site.avg_power_mw(),
        ..huge_solar
    };
    let broken = explorer.evaluate(StrategyKind::RenewablesBattery, &with_battery);
    assert!(
        broken.coverage.fraction() > 0.9,
        "batteries should break the ceiling, got {}",
        broken.coverage
    );
}

#[test]
fn net_zero_annual_matching_hides_hourly_deficits() {
    // The motivating observation of the whole paper.
    let (site, explorer) = explorer_for("UT");
    let demand = explorer.demand().clone();
    let supply = explorer
        .grid()
        .scaled_renewables(site.solar_mw(), site.wind_mw());
    // Annual credits cover consumption...
    assert!(carbon_explorer::core::scenario::achieves_net_zero(
        &demand, &supply
    ));
    // ...but hourly coverage is below 100%.
    let coverage = renewable_coverage(&demand, &supply).expect("aligned");
    assert!(!coverage.is_full());
}

#[test]
fn battery_dispatch_and_explorer_agree() {
    // The explorer's RenewablesBattery path must match a direct dispatch.
    let (site, explorer) = explorer_for("IA");
    let design = DesignPoint {
        solar_mw: 100.0,
        wind_mw: 300.0,
        battery_mwh: 200.0,
        extra_capacity_fraction: 0.0,
    };
    let eval = explorer.evaluate(StrategyKind::RenewablesBattery, &design);

    let supply = explorer.grid().scaled_renewables(100.0, 300.0);
    let mut battery = ClcBattery::lfp(200.0, 1.0);
    let dispatch = simulate_dispatch(&mut battery, explorer.demand(), &supply).expect("aligned");
    let coverage = Coverage::from_unmet(explorer.demand(), &dispatch.unmet).expect("aligned");
    assert_eq!(eval.coverage, coverage);
    assert!((eval.battery_cycles - dispatch.equivalent_cycles).abs() < 1e-9);
    let _ = site;
}

#[test]
fn whole_fleet_pipeline_runs() {
    // Smoke the entire Table 1 fleet through a minimal sweep.
    let fleet = Fleet::meta_us();
    for site in &fleet {
        let grid = GridDataset::synthesize(site.ba(), 2020, 7);
        let explorer = CarbonExplorer::new(site.demand_trace(2020, 7), grid);
        let best = explorer
            .optimal(
                StrategyKind::RenewablesBattery,
                &DesignSpace {
                    solar: (0.0, 15.0 * site.avg_power_mw(), 2),
                    wind: (0.0, 15.0 * site.avg_power_mw(), 2),
                    battery: (0.0, 8.0 * site.avg_power_mw(), 2),
                    extra_capacity: (0.0, 0.0, 1),
                },
            )
            .expect("non-empty");
        assert!(best.total_tons() > 0.0, "{}", site.state());
        assert!(best.coverage.fraction() <= 1.0);
    }
}
