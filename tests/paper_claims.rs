//! Quantitative checks of the paper's headline claims against the
//! synthetic reproduction. Bands are deliberately generous: the substrate
//! is a simulator, so shapes and orderings are asserted, not exact values.

use carbon_explorer::battery::{cycle_life, simulate_dispatch, ClcBattery};
use carbon_explorer::core::Coverage;
use carbon_explorer::grid::curtailment::historical_ca_curtailment;
use carbon_explorer::prelude::*;
use carbon_explorer::timeseries::resample::daily_totals;
use carbon_explorer::timeseries::stats::mean_of_top_k;

fn site_and_supply(state: &str) -> (HourlySeries, HourlySeries, GridDataset) {
    let fleet = Fleet::meta_us();
    let site = fleet.site(state).expect("in Table 1").clone();
    let grid = GridDataset::synthesize(site.ba(), 2020, 7);
    let demand = site.demand_trace(2020, 7);
    let supply = grid.scaled_renewables(site.solar_mw(), site.wind_mw());
    (demand, supply, grid)
}

#[test]
fn intro_renewable_supply_swings_exceed_3x_across_days() {
    // Figure 1 / §1: hourly renewable generation is heavily intermittent.
    let grid = GridDataset::synthesize(BalancingAuthority::CISO, 2020, 7);
    let renewables = grid.wind().try_add(grid.solar()).expect("aligned");
    let daily = daily_totals(&renewables);
    let best = daily.iter().copied().fold(f64::MIN, f64::max);
    let worst = daily.iter().copied().fold(f64::MAX, f64::min);
    assert!(best / worst.max(1.0) > 3.0, "swing {:.2}", best / worst);
}

#[test]
fn section_3_1_demand_is_flat_relative_to_supply() {
    // §3.1: ~4% power swing vs huge supply swings.
    let (demand, supply, _) = site_and_supply("UT");
    let demand_swing = (demand.max().unwrap() - demand.min().unwrap()) / demand.mean();
    let supply_swing = (supply.max().unwrap() - supply.min().unwrap()) / supply.mean().max(1e-9);
    assert!(demand_swing < 0.10, "demand swing {demand_swing}");
    assert!(supply_swing > 10.0 * demand_swing);
}

#[test]
fn section_3_2_best_ten_days_far_exceed_average_in_wind_regions() {
    // Figure 5: BPAT's best ten days ≈ 2.5x the average.
    let grid = GridDataset::synthesize(BalancingAuthority::BPAT, 2020, 7);
    let daily = daily_totals(grid.wind());
    let top10 = mean_of_top_k(&daily, 10).expect("non-empty");
    let avg = daily.iter().sum::<f64>() / daily.len() as f64;
    let ratio = top10 / avg;
    assert!((1.8..5.0).contains(&ratio), "best-10/avg {ratio:.2}");
}

#[test]
fn figure_4_curtailment_grows_to_six_percent() {
    let records = historical_ca_curtailment();
    let last = records.last().expect("non-empty");
    assert_eq!(last.year, 2021);
    assert!((0.05..0.07).contains(&last.total_fraction()));
}

#[test]
fn section_4_1_solar_only_coverage_ceiling() {
    // "For regions that rely entirely on solar ... it is impossible to
    // increase 24/7 coverage much beyond 50%."
    let fleet = Fleet::meta_us();
    let site = fleet.site("NC").expect("in Table 1").clone();
    let grid = GridDataset::synthesize(site.ba(), 2020, 7);
    let demand = site.demand_trace(2020, 7);
    let huge = grid.scaled_renewables(100_000.0, 100_000.0);
    let coverage = renewable_coverage(&demand, &huge).expect("aligned");
    assert!(
        (0.45..0.65).contains(&coverage.fraction()),
        "solar ceiling {}",
        coverage
    );
}

#[test]
fn section_4_1_long_tail_to_full_coverage() {
    // Figure 8: reaching 99.9% takes several times the investment of 95%.
    let fleet = Fleet::meta_us();
    let site = fleet.site("OR").expect("in Table 1").clone();
    let grid = GridDataset::synthesize(site.ba(), 2020, 7);
    let demand = site.demand_trace(2020, 7);
    let coverage_at = |total_mw: f64| {
        let supply = grid.scaled_renewables(total_mw * 0.1, total_mw * 0.9);
        renewable_coverage(&demand, &supply)
            .expect("aligned")
            .percent()
    };
    let invest_for = |target: f64| {
        let (mut lo, mut hi) = (0.0, 300_000.0);
        assert!(coverage_at(hi) >= target, "target {target} reachable");
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if coverage_at(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    };
    let i95 = invest_for(95.0);
    let i999 = invest_for(99.9);
    assert!(
        (i999 - i95) / i95 > 5.0,
        "95%→99.9% marginal investment ratio {:.1}",
        (i999 - i95) / i95
    );
}

#[test]
fn section_4_2_hybrid_regions_need_less_battery_than_solar_regions() {
    // Figure 9: UT needs ~5h, NC ~14h (at sufficiently large investment).
    let battery_hours_for_full = |state: &str, solar_x: f64, wind_x: f64| -> Option<f64> {
        let fleet = Fleet::meta_us();
        let site = fleet.site(state).expect("in Table 1").clone();
        let grid = GridDataset::synthesize(site.ba(), 2020, 7);
        let demand = site.demand_trace(2020, 7);
        let avg = site.avg_power_mw();
        let supply = grid.scaled_renewables(solar_x * avg, wind_x * avg);
        let unmet_at = |capacity: f64| {
            let mut battery = ClcBattery::lfp(capacity, 1.0);
            simulate_dispatch(&mut battery, &demand, &supply)
                .expect("aligned")
                .unmet
                .sum()
        };
        let max = 200.0 * avg;
        if unmet_at(max) > 1e-6 {
            return None;
        }
        let (mut lo, mut hi) = (0.0, max);
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if unmet_at(mid) > 1e-6 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(hi / avg)
    };
    let ut = battery_hours_for_full("UT", 15.0, 10.0).expect("UT reachable");
    let nc = battery_hours_for_full("NC", 25.0, 0.0).expect("NC reachable");
    assert!(
        nc > 1.2 * ut,
        "solar-only NC ({nc:.1}h) should need more battery than hybrid UT ({ut:.1}h)"
    );
    assert!((1.0..20.0).contains(&ut), "UT hours {ut:.1}");
}

#[test]
fn section_4_3_cas_gains_depend_on_region() {
    // §5: CAS increases coverage by 1-22 points depending on the region.
    let mut gains = Vec::new();
    for state in ["UT", "NC", "OR", "TX"] {
        let (demand, supply, _) = site_and_supply(state);
        let before = renewable_coverage(&demand, &supply)
            .expect("aligned")
            .percent();
        let scheduler = GreedyScheduler::new(CasConfig {
            max_capacity_mw: demand.max().unwrap() * 2.0,
            flexible_ratio: 0.4,
        });
        let shifted = scheduler.schedule(&demand, &supply).expect("aligned");
        let after = renewable_coverage(&shifted.shifted_demand, &supply)
            .expect("aligned")
            .percent();
        let gain = after - before;
        assert!((0.0..=30.0).contains(&gain), "{state} gain {gain:.1}");
        gains.push(gain);
    }
    // Regions differ substantially.
    let min = gains.iter().copied().fold(f64::MAX, f64::min);
    let max = gains.iter().copied().fold(f64::MIN, f64::max);
    assert!(max > min + 0.5, "gains should vary by region: {gains:?}");
}

#[test]
fn section_5_1_dod_lifetime_claims() {
    // "life cycle estimation for LFP batteries are 3000 cycles at 100%
    // DoD, and 4500 cycles at 80% DoD" and the 50% cycle increase.
    assert_eq!(cycle_life(1.0), 3000.0);
    assert_eq!(cycle_life(0.8), 4500.0);
    assert!((cycle_life(0.8) / cycle_life(1.0) - 1.5).abs() < 1e-12);
    // 60% DoD → 10,000 cycles → ~27-year lifespan at daily cycling.
    let years = carbon_explorer::battery::lifetime_years(0.6, 365.0);
    assert!((26.0..29.0).contains(&years));
}

#[test]
fn section_5_2_battery_charge_distribution_is_bimodal() {
    // Figure 16: under the greedy dispatch, batteries are "often fully
    // charged or fully discharged".
    let (demand, supply, _) = site_and_supply("UT");
    let capacity = 5.0 * 19.0;
    let mut battery = ClcBattery::lfp(capacity, 1.0);
    let result = simulate_dispatch(&mut battery, &demand, &supply).expect("aligned");
    let hist = result.charge_level_histogram(capacity, 10).expect("bins");
    let counts = hist.counts();
    let edges = counts[0] + counts[9];
    assert!(
        edges as f64 > 0.5 * hist.total() as f64,
        "extreme bins hold {edges} of {}",
        hist.total()
    );
}

#[test]
fn section_5_2_combined_solution_dominates() {
    // "This reduces the additional capacity required ... compared with a
    // battery-only solution or a CAS-only solution alone."
    let (demand, supply, _) = site_and_supply("OR");
    let cap = demand.max().unwrap() * 1.5;

    let mut b1 = ClcBattery::lfp(100.0, 1.0);
    let battery_only = simulate_dispatch(&mut b1, &demand, &supply).expect("aligned");

    let mut none = carbon_explorer::battery::IdealBattery::new(0.0);
    let config = CombinedConfig {
        max_capacity_mw: cap,
        flexible_ratio: 0.4,
        window_hours: 24,
    };
    let cas_only =
        carbon_explorer::scheduler::combined_dispatch(&mut none, &demand, &supply, config)
            .expect("aligned");

    let mut b2 = ClcBattery::lfp(100.0, 1.0);
    let combined = carbon_explorer::scheduler::combined_dispatch(&mut b2, &demand, &supply, config)
        .expect("aligned");

    assert!(combined.unmet.sum() <= battery_only.unmet.sum() + 1e-6);
    assert!(combined.unmet.sum() <= cas_only.unmet.sum() + 1e-6);
}

#[test]
fn figure_6_scenario_intensity_ordering() {
    let (demand, supply, grid) = site_and_supply("UT");
    let unmet = demand
        .zip_with(&supply, |d, s| (d - s).max(0.0))
        .expect("aligned");
    let mitigated = unmet.scale(0.1);
    use carbon_explorer::core::scenario::hourly_intensity;
    use carbon_explorer::core::Scenario;
    let mix = hourly_intensity(Scenario::GridMix, &demand, &supply, &grid, None)
        .expect("aligned")
        .mean();
    let net_zero = hourly_intensity(Scenario::NetZero, &demand, &supply, &grid, None)
        .expect("aligned")
        .mean();
    let cf = hourly_intensity(
        Scenario::CarbonFree247,
        &demand,
        &supply,
        &grid,
        Some(&mitigated),
    )
    .expect("aligned")
    .mean();
    assert!(mix > net_zero && net_zero > cf);
}

#[test]
fn coverage_object_reports_consistent_views() {
    let (demand, supply, _) = site_and_supply("TX");
    let coverage = renewable_coverage(&demand, &supply).expect("aligned");
    let recomputed = 1.0 - coverage.unmet_mwh() / coverage.demand_mwh();
    assert!((coverage.fraction() - recomputed).abs() < 1e-9);
    let _ = Coverage::from_unmet(&demand, &demand.scale(0.0)).expect("aligned");
}
