//! Cross-crate property-based tests: invariants that must hold for *any*
//! demand/supply/battery/scheduler configuration, not just the paper's.

use carbon_explorer::battery::{simulate_dispatch, BatteryModel, ClcBattery, IdealBattery};
use carbon_explorer::prelude::*;
use proptest::prelude::*;

fn series(start: Timestamp, values: Vec<f64>) -> HourlySeries {
    HourlySeries::from_values(start, values)
}

fn start() -> Timestamp {
    Timestamp::start_of_year(2020)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Battery dispatch never invents energy: served + curtailed +
    /// residual SoC is bounded by supply + initial charge.
    #[test]
    fn dispatch_conserves_energy(
        demand in prop::collection::vec(0.0f64..50.0, 48..96),
        supply in prop::collection::vec(0.0f64..80.0, 48..96),
        capacity in 0.0f64..200.0,
    ) {
        let n = demand.len().min(supply.len());
        let demand = series(start(), demand[..n].to_vec());
        let supply = series(start(), supply[..n].to_vec());
        let mut battery = IdealBattery::new(capacity);
        let r = simulate_dispatch(&mut battery, &demand, &supply).unwrap();
        // Renewables consumed directly = demand - unmet - battery_supplied.
        let direct = demand.sum() - r.unmet.sum() - r.battery_supplied.sum();
        let charged = supply.sum() - direct - r.curtailed.sum();
        // Battery books balance: initial + charged - discharged = final SoC.
        let final_soc = r.soc.get(n - 1).unwrap_or(0.0);
        let books = capacity + charged - r.total_discharged_mwh;
        prop_assert!((books - final_soc).abs() < 1e-6,
            "battery books {books} vs soc {final_soc}");
        // Nothing negative anywhere.
        prop_assert!(r.unmet.min().unwrap_or(0.0) >= -1e-9);
        prop_assert!(r.curtailed.min().unwrap_or(0.0) >= -1e-9);
    }

    /// A bigger ideal battery never increases unmet energy.
    #[test]
    fn unmet_energy_is_monotone_in_battery_capacity(
        demand in prop::collection::vec(0.0f64..50.0, 48..72),
        supply in prop::collection::vec(0.0f64..80.0, 48..72),
        small in 0.0f64..50.0,
        extra in 0.0f64..100.0,
    ) {
        let n = demand.len().min(supply.len());
        let demand = series(start(), demand[..n].to_vec());
        let supply = series(start(), supply[..n].to_vec());
        let mut a = IdealBattery::new(small);
        let mut b = IdealBattery::new(small + extra);
        let ra = simulate_dispatch(&mut a, &demand, &supply).unwrap();
        let rb = simulate_dispatch(&mut b, &demand, &supply).unwrap();
        prop_assert!(rb.unmet.sum() <= ra.unmet.sum() + 1e-6);
    }

    /// The C/L/C battery's SoC always stays within [DoD floor, capacity],
    /// whatever the request sequence.
    #[test]
    fn clc_soc_stays_in_bounds(
        requests in prop::collection::vec((-40.0f64..40.0, any::<bool>()), 1..200),
        capacity in 1.0f64..100.0,
        dod in 0.1f64..1.0,
    ) {
        let mut battery = ClcBattery::lfp(capacity, dod);
        for (power, charge) in requests {
            if charge {
                battery.charge(power);
            } else {
                battery.discharge(power);
            }
            prop_assert!(battery.soc_mwh() >= battery.min_soc_mwh() - 1e-9);
            prop_assert!(battery.soc_mwh() <= capacity + 1e-9);
        }
    }

    /// Greedy scheduling conserves each day's energy and respects the cap
    /// for arbitrary inputs.
    #[test]
    fn scheduling_conserves_daily_energy(
        demand in prop::collection::vec(0.0f64..30.0, 48..96),
        supply in prop::collection::vec(0.0f64..50.0, 48..96),
        fwr in 0.0f64..1.0,
        cap_slack in 1.0f64..3.0,
    ) {
        let n = (demand.len().min(supply.len()) / 24) * 24;
        prop_assume!(n >= 24);
        let demand = series(start(), demand[..n].to_vec());
        let supply = series(start(), supply[..n].to_vec());
        let cap = demand.max().unwrap() * cap_slack;
        let scheduler = GreedyScheduler::new(CasConfig {
            max_capacity_mw: cap,
            flexible_ratio: fwr,
        });
        let result = scheduler.schedule(&demand, &supply).unwrap();
        for day in 0..n / 24 {
            let orig: f64 = demand.values()[day * 24..(day + 1) * 24].iter().sum();
            let new: f64 = result.shifted_demand.values()[day * 24..(day + 1) * 24].iter().sum();
            prop_assert!((orig - new).abs() < 1e-6, "day {day}: {orig} vs {new}");
        }
        for &v in result.shifted_demand.values() {
            prop_assert!(v <= cap + 1e-6);
            prop_assert!(v >= -1e-9);
        }
    }

    /// Scheduling never increases the renewable deficit.
    #[test]
    fn scheduling_never_hurts(
        demand in prop::collection::vec(0.0f64..30.0, 48..96),
        supply in prop::collection::vec(0.0f64..50.0, 48..96),
        fwr in 0.0f64..1.0,
    ) {
        let n = (demand.len().min(supply.len()) / 24) * 24;
        prop_assume!(n >= 24);
        let demand = series(start(), demand[..n].to_vec());
        let supply = series(start(), supply[..n].to_vec());
        let scheduler = GreedyScheduler::new(CasConfig {
            max_capacity_mw: demand.max().unwrap() * 2.0,
            flexible_ratio: fwr,
        });
        let result = scheduler.schedule(&demand, &supply).unwrap();
        let deficit = |d: &HourlySeries| {
            d.zip_with(&supply, |p, s| (p - s).max(0.0)).unwrap().sum()
        };
        prop_assert!(deficit(&result.shifted_demand) <= deficit(&demand) + 1e-6);
    }

    /// Combined dispatch runs every job exactly once: total effective load
    /// equals total demand.
    #[test]
    fn combined_dispatch_conserves_work(
        demand in prop::collection::vec(0.0f64..30.0, 48..96),
        supply in prop::collection::vec(0.0f64..50.0, 48..96),
        fwr in 0.0f64..1.0,
        capacity in 0.0f64..80.0,
    ) {
        let n = demand.len().min(supply.len());
        let demand = series(start(), demand[..n].to_vec());
        let supply = series(start(), supply[..n].to_vec());
        let mut battery = ClcBattery::lfp(capacity, 1.0);
        let r = carbon_explorer::scheduler::combined_dispatch(
            &mut battery,
            &demand,
            &supply,
            CombinedConfig {
                max_capacity_mw: f64::INFINITY,
                flexible_ratio: fwr,
                window_hours: 24,
            },
        )
        .unwrap();
        prop_assert!((r.effective_demand.sum() - demand.sum()).abs() < 1e-6);
        prop_assert!(r.unmet.min().unwrap_or(0.0) >= -1e-9);
    }

    /// Coverage is a proper fraction and monotone in uniform supply scaling.
    #[test]
    fn coverage_is_monotone_in_supply_scale(
        demand in prop::collection::vec(0.1f64..30.0, 24..72),
        supply in prop::collection::vec(0.0f64..50.0, 24..72),
        scale in 0.0f64..2.0,
    ) {
        let n = demand.len().min(supply.len());
        let demand = series(start(), demand[..n].to_vec());
        let supply = series(start(), supply[..n].to_vec());
        let base = renewable_coverage(&demand, &supply).unwrap();
        let scaled = renewable_coverage(&demand, &supply.scale(1.0 + scale)).unwrap();
        prop_assert!((0.0..=1.0).contains(&base.fraction()));
        prop_assert!(scaled.fraction() >= base.fraction() - 1e-12);
    }

    /// Investment scaling in the grid layer is linear: coverage at 2x the
    /// investment equals coverage at a 2x-scaled supply.
    #[test]
    fn grid_scaling_is_linear(mw in 1.0f64..2000.0) {
        let grid = GridDataset::synthesize(BalancingAuthority::PACE, 2020, 7);
        let one = grid.scaled_wind(mw);
        let two = grid.scaled_wind(2.0 * mw);
        for i in (0..one.len()).step_by(523) {
            prop_assert!((two[i] - 2.0 * one[i]).abs() < 1e-6);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Coarser credit-matching granularity can only match more energy.
    #[test]
    fn matching_is_monotone_in_granularity(
        demand in prop::collection::vec(0.1f64..20.0, 48..120),
        supply in prop::collection::vec(0.0f64..40.0, 48..120),
    ) {
        use carbon_explorer::core::accounting::{match_credits, MatchingGranularity};
        let n = demand.len().min(supply.len());
        let demand = series(start(), demand[..n].to_vec());
        let supply = series(start(), supply[..n].to_vec());
        let intensity = HourlySeries::constant(start(), n, 0.5);
        let mut previous = -1.0;
        for granularity in MatchingGranularity::ALL {
            let report = match_credits(&demand, &supply, &intensity, granularity).unwrap();
            prop_assert!(report.matched_fraction() >= previous - 1e-12);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&report.matched_fraction()));
            prop_assert!(report.residual_emissions_tons >= -1e-9);
            previous = report.matched_fraction();
        }
    }

    /// The tiered scheduler conserves daily energy and never worsens the
    /// deficit, whatever the tier mix.
    #[test]
    fn tiered_scheduler_invariants(
        demand in prop::collection::vec(0.0f64..20.0, 48..96),
        supply in prop::collection::vec(0.0f64..30.0, 48..96),
        flexible in 0.0f64..1.0,
    ) {
        let n = (demand.len().min(supply.len()) / 24) * 24;
        prop_assume!(n >= 24);
        let demand = series(start(), demand[..n].to_vec());
        let supply = series(start(), supply[..n].to_vec());
        let scheduler = TieredScheduler::meta_tiers(demand.max().unwrap() * 2.0, flexible);
        let result = scheduler.schedule(&demand, &supply).unwrap();
        for day in 0..n / 24 {
            let orig: f64 = demand.values()[day * 24..(day + 1) * 24].iter().sum();
            let new: f64 = result.values()[day * 24..(day + 1) * 24].iter().sum();
            prop_assert!((orig - new).abs() < 1e-6);
        }
        let deficit = |d: &HourlySeries| {
            d.zip_with(&supply, |p, s| (p - s).max(0.0)).unwrap().sum()
        };
        prop_assert!(deficit(&result) <= deficit(&demand) + 1e-6);
    }

    /// Monthly coverage decomposition always reassembles the annual total.
    #[test]
    fn monthly_coverage_decomposes_exactly(
        demand in prop::collection::vec(0.0f64..20.0, 720..1500),
        supply in prop::collection::vec(0.0f64..30.0, 720..1500),
    ) {
        use carbon_explorer::core::monthly_coverage;
        let n = demand.len().min(supply.len());
        let demand = series(start(), demand[..n].to_vec());
        let supply = series(start(), supply[..n].to_vec());
        let months = monthly_coverage(&demand, &supply).unwrap();
        let monthly_total: f64 = months.iter().map(|m| m.unmet_mwh).sum();
        let annual = demand
            .zip_with(&supply, |d, s| (d - s).max(0.0))
            .unwrap()
            .sum();
        prop_assert!((monthly_total - annual).abs() < 1e-6);
    }

    /// Seasonal-naive forecasts of a perfectly periodic signal are exact.
    #[test]
    fn seasonal_naive_is_exact_on_periodic_signals(
        profile in prop::collection::vec(0.0f64..50.0, 24),
        days in 2usize..6,
        horizon in 1usize..48,
    ) {
        use carbon_explorer::timeseries::forecast::seasonal_naive;
        let history = HourlySeries::from_fn(start(), days * 24, |h| profile[h % 24]);
        let forecast = seasonal_naive(&history, horizon).unwrap();
        for h in 0..horizon {
            let expected = profile[(days * 24 + h) % 24];
            prop_assert!((forecast[h] - expected).abs() < 1e-12);
        }
    }

    /// Spatial migration never increases the fleet deficit and conserves
    /// work up to the configured overhead.
    #[test]
    fn migration_invariants(
        demand_a in prop::collection::vec(0.0f64..20.0, 24..48),
        demand_b in prop::collection::vec(0.0f64..20.0, 24..48),
        supply_a in prop::collection::vec(0.0f64..30.0, 24..48),
        supply_b in prop::collection::vec(0.0f64..30.0, 24..48),
        fraction in 0.0f64..1.0,
    ) {
        use carbon_explorer::scheduler::{migrate_load, MigrationConfig, SpatialSite};
        let n = demand_a.len().min(demand_b.len()).min(supply_a.len()).min(supply_b.len());
        let overhead = 0.02;
        let sites = vec![
            SpatialSite {
                name: "a".into(),
                demand: series(start(), demand_a[..n].to_vec()),
                supply: series(start(), supply_a[..n].to_vec()),
                max_capacity_mw: 100.0,
            },
            SpatialSite {
                name: "b".into(),
                demand: series(start(), demand_b[..n].to_vec()),
                supply: series(start(), supply_b[..n].to_vec()),
                max_capacity_mw: 100.0,
            },
        ];
        let result = migrate_load(
            &sites,
            MigrationConfig {
                migratable_fraction: fraction,
                migration_overhead: overhead,
            },
        )
        .unwrap();
        prop_assert!(result.deficit_after_mwh <= result.deficit_before_mwh + 1e-6);
        let before: f64 = sites.iter().map(|s| s.demand.sum()).sum();
        let after: f64 = result.balanced_demand.iter().map(|d| d.sum()).sum();
        prop_assert!((after - before - result.migrated_mwh * overhead).abs() < 1e-6);
    }
}
