//! The serving layer's determinism contract, end to end: bodies served
//! over HTTP — fresh, from the response cache, coalesced, or from a
//! different server instance — are byte-identical to encoding the direct
//! library result, and every float survives with its exact bits.

use carbon_explorer::core::EvalScratch;
use carbon_explorer::serve::{
    build_explorer, execute, start, ComputeKind, ComputeRequest, Json, Limits, ServerConfig,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Sends one HTTP/1.1 request and returns `(status, x-ce-cache, body)`.
fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, Option<String>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "POST {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("head/body split");
    let status = head
        .split(' ')
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status code");
    let cache_note = head
        .split("\r\n")
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.trim().eq_ignore_ascii_case("x-ce-cache"))
        .map(|(_, v)| v.trim().to_string());
    (status, cache_note, body.to_string())
}

/// Sends one HTTP/1.1 request and returns `(status, lowercased headers,
/// undecoded payload)` — the payload keeps its chunk framing, so callers
/// can compare wire bytes as well as decoded bodies.
fn post_raw(addr: SocketAddr, path: &str, body: &str) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "POST {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let (head, payload) = text.split_once("\r\n\r\n").expect("head/body split");
    let status = head
        .split(' ')
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status code");
    let headers = head
        .split("\r\n")
        .skip(1)
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, payload.to_string())
}

fn header<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

/// Decodes a `transfer-encoding: chunked` payload into the body bytes.
fn dechunk(payload: &str) -> String {
    let mut out = String::new();
    let mut rest = payload;
    loop {
        let (len_line, after) = rest.split_once("\r\n").expect("chunk length line");
        let len = usize::from_str_radix(len_line.trim(), 16).expect("hex chunk length");
        if len == 0 {
            break;
        }
        out.push_str(&after[..len]);
        rest = &after[len + 2..];
    }
    out
}

/// Encodes the result of executing `body` directly against the library —
/// the reference bytes every served response must match.
fn direct_bytes(kind: ComputeKind, body: &str) -> String {
    let json = Json::parse(body).expect("request JSON");
    let request = ComputeRequest::parse(kind, &json, &Limits::default()).expect("valid request");
    let explorer = build_explorer(request.context()).expect("explorer");
    let mut scratch = EvalScratch::default();
    execute(&request, &explorer, &mut scratch).encode()
}

/// Asserts two parsed JSON trees are equal with numbers compared by
/// `f64::to_bits` — stricter than `==` (distinguishes -0.0, tolerates
/// nothing).
fn assert_bitwise_eq(a: &Json, b: &Json, path: &str) {
    match (a, b) {
        (Json::Num(x), Json::Num(y)) => {
            assert_eq!(x.to_bits(), y.to_bits(), "float bits differ at {path}");
        }
        (Json::Arr(xs), Json::Arr(ys)) => {
            assert_eq!(xs.len(), ys.len(), "array length differs at {path}");
            for (i, (x, y)) in xs.iter().zip(ys).enumerate() {
                assert_bitwise_eq(x, y, &format!("{path}[{i}]"));
            }
        }
        (Json::Obj(xs), Json::Obj(ys)) => {
            assert_eq!(xs.len(), ys.len(), "object size differs at {path}");
            for ((kx, x), (ky, y)) in xs.iter().zip(ys) {
                assert_eq!(kx, ky, "key order differs at {path}");
                assert_bitwise_eq(x, y, &format!("{path}.{kx}"));
            }
        }
        _ => assert_eq!(a, b, "value differs at {path}"),
    }
}

#[test]
fn evaluate_is_bitwise_identical_fresh_cached_and_across_instances() {
    let body = r#"{"site":"UT","strategy":"renewables_battery_cas",
        "design":{"solar_mw":150,"wind_mw":100,"battery_mwh":40,
                  "extra_capacity_fraction":0.5}}"#;
    let reference = direct_bytes(ComputeKind::Evaluate, body);

    let server_a = start(ServerConfig::default()).expect("bind A");
    let (status, note, fresh) = post(server_a.addr(), "/evaluate", body);
    assert_eq!(status, 200, "{fresh}");
    assert_eq!(note.as_deref(), Some("miss"));
    assert_eq!(fresh, reference, "fresh response differs from library");

    let (status, note, cached) = post(server_a.addr(), "/evaluate", body);
    assert_eq!(status, 200);
    assert_eq!(note.as_deref(), Some("hit"));
    assert_eq!(cached, reference, "cache replay differs from library");

    let server_b = start(ServerConfig::default()).expect("bind B");
    let (status, _, other_instance) = post(server_b.addr(), "/evaluate", body);
    assert_eq!(status, 200);
    assert_eq!(other_instance, reference, "second instance differs");

    let served = Json::parse(&fresh).expect("response JSON");
    let expected = Json::parse(&reference).expect("reference JSON");
    assert_bitwise_eq(&served, &expected, "$");
    assert!(served.get("strategy").is_some() && served.get("design").is_some());

    server_a.shutdown();
    server_b.shutdown();
}

#[test]
fn coalesced_explores_share_one_computation_and_match_the_library() {
    // The served sweep runs on the serial engine inside one worker; the
    // reference below runs the parallel engine in this process. Byte
    // equality here is the workspace's parallel == serial invariant,
    // observed through the HTTP path.
    let body = r#"{"ba":"PACE","demand_mw":5,"strategy":"renewables_battery",
        "space":{"solar":[0,100,4],"wind":[0,100,4],"battery":[0,50,64]}}"#;
    let reference = direct_bytes(ComputeKind::Explore, body);

    let config = ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    };
    let handle = start(config).expect("bind");
    let addr = handle.addr();

    let clients: Vec<_> = (0..3)
        .map(|_| std::thread::spawn(move || post(addr, "/explore", body)))
        .collect();
    let mut notes = Vec::new();
    for client in clients {
        let (status, note, served) = client.join().expect("client");
        assert_eq!(status, 200, "{served}");
        assert_eq!(served, reference, "served sweep differs from library");
        notes.push(note.unwrap_or_default());
    }

    // However the three requests interleaved (coalesced onto one in-flight
    // computation or replayed from cache), the worker pool computed the
    // sweep exactly once.
    let (status, _, stats_body) = post(addr, "/stats", "");
    assert_eq!(status, 405, "stats is GET-only: {stats_body}");
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"GET /stats HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n")
        .expect("stats request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("stats response");
    let stats = Json::parse(raw.split("\r\n\r\n").nth(1).expect("stats body")).expect("stats JSON");
    let explore = stats
        .get("endpoints")
        .and_then(|e| e.get("explore"))
        .expect("explore stats");
    assert_eq!(explore.get("computed").and_then(Json::as_f64), Some(1.0));
    let attached = explore
        .get("coalesced")
        .and_then(Json::as_f64)
        .unwrap_or(0.0)
        + explore
            .get("cache_hits")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
    assert_eq!(attached, 2.0, "two requests rode the first computation");
    assert!(notes.contains(&"miss".to_string()), "{notes:?}");

    handle.shutdown();
}

#[test]
fn streamed_explore_chunks_concatenate_to_the_buffered_encoding() {
    // 4 × 4 × 128 = 2048 points: exactly the default streaming threshold,
    // so the sweep goes out as `transfer-encoding: chunked`, one fragment
    // per evaluated group. The determinism contract must hold through the
    // streaming path — fresh, coalesced, and replayed from cache — and
    // the cached fragment boundaries must make replays byte-identical on
    // the wire, not just after decoding.
    let body = r#"{"ba":"PACE","demand_mw":5,"strategy":"renewables_battery",
        "space":{"solar":[0,100,4],"wind":[0,100,4],"battery":[0,50,128]}}"#;
    let reference = direct_bytes(ComputeKind::Explore, body);

    let config = ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    };
    let handle = start(config).expect("bind");
    let addr = handle.addr();

    // Three concurrent clients: one computes, the others coalesce onto the
    // in-flight stream or replay the cached fragments.
    let clients: Vec<_> = (0..3)
        .map(|_| std::thread::spawn(move || post_raw(addr, "/explore", body)))
        .collect();
    let mut wires = Vec::new();
    for client in clients {
        let (status, headers, payload) = client.join().expect("client");
        assert_eq!(status, 200);
        assert_eq!(header(&headers, "transfer-encoding"), Some("chunked"));
        assert_eq!(header(&headers, "content-length"), None);
        assert_eq!(
            dechunk(&payload),
            reference,
            "chunk concatenation differs from the buffered encoding"
        );
        wires.push(payload);
    }
    assert!(
        wires.windows(2).all(|w| w[0] == w[1]),
        "fragment boundaries differ between fresh, coalesced, and cached replays"
    );

    // A later request replays from the response cache — same wire bytes.
    let (status, headers, replay) = post_raw(addr, "/explore", body);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-ce-cache"), Some("hit"));
    assert_eq!(replay, wires[0], "cache replay differs on the wire");

    // However the clients interleaved, the sweep was computed exactly once.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"GET /stats HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n")
        .expect("stats request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("stats response");
    let stats = Json::parse(raw.split("\r\n\r\n").nth(1).expect("stats body")).expect("stats JSON");
    let explore = stats
        .get("endpoints")
        .and_then(|e| e.get("explore"))
        .expect("explore stats");
    assert_eq!(explore.get("computed").and_then(Json::as_f64), Some(1.0));
    let streamed = stats
        .get("shards")
        .and_then(Json::as_array)
        .and_then(|shards| shards.first())
        .and_then(|s| s.get("streamed"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    assert!(streamed >= 4.0, "all four responses streamed: {streamed}");

    // Every float in the streamed body survives with its exact bits.
    let served = Json::parse(&dechunk(&wires[0])).expect("served JSON");
    let expected = Json::parse(&reference).expect("reference JSON");
    assert_bitwise_eq(&served, &expected, "$");

    handle.shutdown();
}

#[test]
fn optimal_search_is_bitwise_identical_over_http() {
    let body = r#"{"ba":"ERCO","demand_mw":10,"strategy":"renewables_only",
        "space":{"solar":[0,200,6],"wind":[0,200,6]},"refine_rounds":2}"#;
    let reference = direct_bytes(ComputeKind::Optimal, body);
    assert!(reference.contains("\"found\":true"), "{reference}");

    let handle = start(ServerConfig::default()).expect("bind");
    let (status, note, fresh) = post(handle.addr(), "/optimal", body);
    assert_eq!(status, 200, "{fresh}");
    assert_eq!(note.as_deref(), Some("miss"));
    assert_eq!(fresh, reference, "optimal search differs from library");

    let (status, note, cached) = post(handle.addr(), "/optimal", body);
    assert_eq!(status, 200);
    assert_eq!(note.as_deref(), Some("hit"));
    assert_eq!(cached, reference);

    handle.shutdown();
}
