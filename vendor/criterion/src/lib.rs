//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use — [`Criterion`],
//! [`criterion_group!`], [`criterion_main!`], `bench_function`,
//! `benchmark_group` — backed by a simple calibrated wall-clock timer
//! instead of criterion's statistical machinery. Each benchmark is
//! calibrated to a batch duration, then measured over several batches;
//! the report prints the median, mean, and minimum per-iteration time.
//!
//! Output format:
//!
//! ```text
//! explore_batt_cas_540pts    time: [median 182.41 ms]  mean 183.02 ms  min 181.77 ms  (5 batches x 2 iters)
//! ```

use std::hint;
use std::time::{Duration, Instant};

/// Target wall-clock time for one measured batch.
const BATCH_TARGET: Duration = Duration::from_millis(120);
/// Number of measured batches per benchmark.
const BATCHES: usize = 5;

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs `f` as a named benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            prefix: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Runs `f` as a benchmark named `prefix/id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.prefix, id), f);
        self
    }

    /// Ends the group (no-op; matches criterion's API).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; its [`iter`](Bencher::iter) method times
/// the routine.
#[derive(Debug)]
pub struct Bencher {
    iters_per_batch: u64,
    batch_times: Vec<Duration>,
    calibrating: bool,
}

impl Bencher {
    /// Times `f`, calibrating batch size on the first call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.calibrating {
            // Grow the iteration count until a batch takes long enough to
            // time reliably.
            let mut n: u64 = 1;
            loop {
                let start = Instant::now();
                for _ in 0..n {
                    hint::black_box(f());
                }
                let elapsed = start.elapsed();
                if elapsed >= BATCH_TARGET || n >= 1 << 24 {
                    self.iters_per_batch = if elapsed >= BATCH_TARGET && elapsed < BATCH_TARGET * 4
                    {
                        n
                    } else {
                        scale_iters(n, elapsed)
                    };
                    break;
                }
                n *= 4;
            }
            self.calibrating = false;
        }
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..self.iters_per_batch {
                hint::black_box(f());
            }
            self.batch_times.push(start.elapsed());
        }
    }
}

/// Picks an iteration count so one batch lands near [`BATCH_TARGET`].
fn scale_iters(n: u64, elapsed: Duration) -> u64 {
    let per_iter = elapsed.as_secs_f64() / n as f64;
    ((BATCH_TARGET.as_secs_f64() / per_iter).round() as u64).max(1)
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut bencher = Bencher {
        iters_per_batch: 1,
        batch_times: Vec::new(),
        calibrating: true,
    };
    f(&mut bencher);
    if bencher.batch_times.is_empty() {
        println!("{id:<40} (no measurements)");
        return;
    }
    let iters = bencher.iters_per_batch.max(1);
    let mut per_iter: Vec<f64> = bencher
        .batch_times
        .iter()
        .map(|t| t.as_secs_f64() / iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter[0];
    println!(
        "{id:<40} time: [median {}]  mean {}  min {}  ({} batches x {iters} iters)",
        format_time(median),
        format_time(mean),
        format_time(min),
        per_iter.len(),
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.2} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.2} µs", seconds * 1e6)
    } else {
        format!("{:.2} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
