//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro over `arg in strategy` parameters, range and tuple
//! strategies, [`collection::vec`], [`any`], `prop_assert!`/`prop_assume!`,
//! and [`ProptestConfig::with_cases`]. Cases are generated from a
//! deterministic per-test seed (hashed from the test's module path and
//! name), so failures reproduce across runs.
//!
//! Differences from real proptest: no shrinking (a failure reports the
//! first failing case as-is) and no persistence files. Both only affect
//! failure ergonomics, not what the tests verify.

use rand::rngs::StdRng;
use rand::{RngCore, SampleRange, SeedableRng};
use std::marker::PhantomData;
use std::ops::Range;

/// Runner configuration (subset of proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The deterministic per-test random source.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds the generator from a test identifier (FNV-1a hash).
    pub fn deterministic(test_name: &str) -> Self {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self(StdRng::seed_from_u64(hash))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of random values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_single(rng)
            }
        }
    )*};
}

impl_range_strategy!(f64, usize, u64, u32, i64, i32);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

/// Strategy wrapper returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T` (subset of `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::SampleRange;
    use std::ops::Range;

    /// Element count for [`vec`]: an exact size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self(r)
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose elements come from `element` and whose length is
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.0.len() <= 1 {
                self.size.0.start
            } else {
                self.size.0.clone().sample_single(rng)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
    };

    /// Mirrors the `prop` module path used as `prop::collection::vec`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a property-test condition (no shrinking; behaves as `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality in a property test (behaves as `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::core::option::Option::None;
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                let __case_fn = move || -> ::core::option::Option<()> {
                    $body
                    ::core::option::Option::Some(())
                };
                let _ = __case_fn();
            }
        }
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
}
