//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds without crates.io access, so this crate provides
//! the small slice of the `rand 0.8` API the workspace actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over `f64` and integer ranges.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic for
//! a given seed, and statistically strong enough for the bounded noise
//! terms the grid/datacenter synthesizers draw from it. The streams differ
//! from the real `StdRng` (ChaCha12), so synthesized datasets are not
//! byte-identical to ones produced with crates.io `rand`; everything in
//! this workspace treats synthesized data as seed-reproducible, not
//! generator-portable.

use std::ops::Range;

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Deterministically constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over any [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        sample_unit_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can produce uniform samples (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// A uniform draw from `[0, 1)` with 53 bits of precision.
fn sample_unit_f64<R: RngCore>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * sample_unit_f64(rng)
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is < 2^-32 for every span this workspace
                // samples; acceptable for synthesis noise.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, i64, i32);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the recommended xoshiro seeding.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0f64..1.0), b.gen_range(0.0f64..1.0));
        }
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5f64..3.5);
            assert!((-2.5..3.5).contains(&x));
        }
    }

    #[test]
    fn int_range_respects_bounds_and_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let x = rng.gen_range(0usize..7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_samples_look_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }
}
