//! Offline stand-in for the `serde` crate.
//!
//! This workspace builds in environments with no access to crates.io, so
//! the real `serde` cannot be fetched. Nothing in the workspace actually
//! serializes today — types only carry `#[derive(Serialize, Deserialize)]`
//! so they are ready for a wire format later — which means marker traits
//! and a no-op derive are sufficient to keep every annotation compiling.
//!
//! Swapping back to the real `serde` is a one-line change in the workspace
//! `Cargo.toml` (point the `serde` entry at crates.io); no source file in
//! the workspace needs to change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
