//! No-op `Serialize`/`Deserialize` derives for the offline `serde`
//! stand-in. Each derive emits an empty marker-trait impl for the
//! annotated type, so `#[derive(Serialize, Deserialize)]` keeps compiling
//! without the real serde machinery.
//!
//! Only non-generic structs and enums are supported — which covers every
//! annotated type in this workspace. A generic type produces a compile
//! error pointing here rather than silently mis-parsing.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct`/`enum`/`union` keyword.
/// Panics (a compile error at the derive site) on generic types.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tree) = tokens.next() {
        if let TokenTree::Ident(ident) = &tree {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        if let Some(TokenTree::Punct(p)) = tokens.next() {
                            if p.as_char() == '<' {
                                panic!(
                                    "vendored serde_derive does not support generic type `{name}`"
                                );
                            }
                        }
                        return name.to_string();
                    }
                    other => panic!("expected type name after `{kw}`, found {other:?}"),
                }
            }
        }
    }
    panic!("vendored serde_derive: no struct/enum/union found in derive input");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
